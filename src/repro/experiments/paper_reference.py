"""The paper's reported numbers, as structured data.

Tables 2-4 of the paper, transcribed so harness results can be compared
against them programmatically: :func:`compare_with_paper` lines up each
measured cell with the published one and checks the *shape* relations
(who wins, 1-shot vs 5-shot) rather than absolute values.
"""

from __future__ import annotations

from dataclasses import dataclass

#: (mean, half_width) in percent, keyed [table][setting][method][k_shot].
PAPER_RESULTS: dict[str, dict[str, dict[str, dict[int, tuple[float, float]]]]] = {
    "table2": {
        "NNE": {
            "GPT2": {1: (14.36, 0.59), 5: (15.51, 0.60)},
            "Flair": {1: (15.26, 0.48), 5: (16.32, 0.46)},
            "ELMo": {1: (15.85, 0.54), 5: (16.33, 0.58)},
            "BERT": {1: (16.61, 0.56), 5: (17.16, 0.59)},
            "XLNet": {1: (16.34, 0.61), 5: (17.23, 0.58)},
            "FineTune": {1: (18.24, 0.50), 5: (18.34, 0.52)},
            "ProtoNet": {1: (19.45, 0.75), 5: (21.44, 0.65)},
            "MAML": {1: (19.98, 0.83), 5: (22.56, 0.73)},
            "SNAIL": {1: (20.17, 0.78), 5: (24.48, 0.82)},
            "FewNER": {1: (23.74, 0.65), 5: (29.50, 0.68)},
        },
        "FG-NER": {
            "GPT2": {1: (13.96, 0.65), 5: (14.21, 0.85)},
            "Flair": {1: (15.85, 0.63), 5: (16.87, 0.81)},
            "ELMo": {1: (18.74, 0.73), 5: (18.90, 0.91)},
            "BERT": {1: (16.56, 0.64), 5: (19.67, 0.83)},
            "XLNet": {1: (16.83, 0.67), 5: (19.01, 0.85)},
            "FineTune": {1: (17.85, 0.69), 5: (20.69, 0.87)},
            "ProtoNet": {1: (22.78, 0.85), 5: (25.67, 0.81)},
            "MAML": {1: (24.09, 0.79), 5: (26.82, 0.74)},
            "SNAIL": {1: (25.68, 0.76), 5: (29.89, 0.94)},
            "FewNER": {1: (30.54, 0.85), 5: (40.16, 1.24)},
        },
        "GENIA": {
            "GPT2": {1: (13.75, 0.78), 5: (14.45, 0.79)},
            "Flair": {1: (9.77, 0.43), 5: (11.44, 0.46)},
            "ELMo": {1: (15.21, 0.44), 5: (19.18, 0.64)},
            "BERT": {1: (12.02, 0.55), 5: (14.93, 0.53)},
            "XLNet": {1: (11.98, 0.44), 5: (12.03, 0.52)},
            "FineTune": {1: (6.67, 0.32), 5: (7.21, 0.34)},
            "ProtoNet": {1: (12.34, 0.47), 5: (15.03, 0.50)},
            "MAML": {1: (13.73, 0.59), 5: (16.46, 0.49)},
            "SNAIL": {1: (15.66, 0.52), 5: (20.74, 0.68)},
            "FewNER": {1: (23.24, 0.73), 5: (29.19, 0.64)},
        },
    },
    "table3": {
        "BC->UN": {
            "GPT2": {1: (16.53, 0.73), 5: (17.08, 0.71)},
            "Flair": {1: (14.12, 0.50), 5: (14.96, 0.56)},
            "ELMo": {1: (17.05, 0.61), 5: (17.61, 0.66)},
            "BERT": {1: (17.57, 0.62), 5: (18.20, 0.68)},
            "XLNet": {1: (16.12, 0.69), 5: (17.94, 0.72)},
            "FineTune": {1: (16.60, 0.83), 5: (17.49, 0.84)},
            "ProtoNet": {1: (17.46, 0.71), 5: (17.98, 0.67)},
            "MAML": {1: (17.93, 0.68), 5: (18.68, 0.59)},
            "SNAIL": {1: (18.45, 0.83), 5: (20.43, 0.74)},
            "FewNER": {1: (21.65, 0.61), 5: (25.87, 0.57)},
        },
        "BN->CTS": {
            "GPT2": {1: (31.12, 0.77), 5: (32.69, 0.79)},
            "Flair": {1: (34.79, 0.81), 5: (37.03, 0.87)},
            "ELMo": {1: (37.10, 0.91), 5: (38.52, 0.95)},
            "BERT": {1: (34.37, 0.85), 5: (36.28, 0.90)},
            "XLNet": {1: (29.32, 0.73), 5: (34.31, 0.86)},
            "FineTune": {1: (24.19, 0.52), 5: (24.37, 0.54)},
            "ProtoNet": {1: (28.38, 0.75), 5: (30.55, 0.71)},
            "MAML": {1: (30.57, 0.68), 5: (31.78, 0.83)},
            "SNAIL": {1: (36.19, 0.81), 5: (37.61, 0.68)},
            "FewNER": {1: (39.66, 0.75), 5: (45.65, 0.66)},
        },
        "NW->WL": {
            "GPT2": {1: (14.96, 0.52), 5: (15.51, 0.58)},
            "Flair": {1: (15.10, 0.61), 5: (15.74, 0.63)},
            "ELMo": {1: (16.88, 0.54), 5: (17.77, 0.59)},
            "BERT": {1: (15.28, 0.58), 5: (16.29, 0.57)},
            "XLNet": {1: (16.81, 0.44), 5: (17.56, 0.51)},
            "FineTune": {1: (17.28, 0.75), 5: (17.48, 0.75)},
            "ProtoNet": {1: (19.39, 0.59), 5: (20.46, 0.64)},
            "MAML": {1: (22.87, 0.68), 5: (27.83, 0.59)},
            "SNAIL": {1: (25.38, 0.63), 5: (29.92, 0.75)},
            "FewNER": {1: (31.93, 0.77), 5: (38.66, 0.73)},
        },
    },
    "table4": {
        "GENIA->BioNLP13CG": {
            "GPT2": {1: (10.31, 0.41), 5: (12.17, 0.49)},
            "Flair": {1: (10.53, 0.33), 5: (12.49, 0.45)},
            "ELMo": {1: (10.39, 0.41), 5: (11.45, 0.42)},
            "BERT": {1: (13.36, 0.53), 5: (15.15, 0.61)},
            "XLNet": {1: (9.15, 0.32), 5: (10.59, 0.37)},
            "FineTune": {1: (13.86, 0.64), 5: (13.96, 0.65)},
            "ProtoNet": {1: (14.05, 0.57), 5: (15.38, 0.49)},
            "MAML": {1: (14.98, 0.63), 5: (17.34, 0.53)},
            "SNAIL": {1: (16.63, 0.59), 5: (19.41, 0.63)},
            "FewNER": {1: (22.46, 0.61), 5: (27.94, 0.52)},
        },
        "OntoNotes->BioNLP13CG": {
            "GPT2": {1: (9.68, 0.41), 5: (10.23, 0.42)},
            "Flair": {1: (8.37, 0.31), 5: (9.15, 0.33)},
            "ELMo": {1: (10.76, 0.55), 5: (11.85, 0.59)},
            "BERT": {1: (9.15, 0.29), 5: (9.98, 0.31)},
            "XLNet": {1: (7.30, 0.34), 5: (7.72, 0.34)},
            "FineTune": {1: (6.16, 0.35), 5: (6.53, 0.38)},
            "ProtoNet": {1: (8.34, 0.47), 5: (8.93, 0.43)},
            "MAML": {1: (9.22, 0.38), 5: (10.57, 0.34)},
            "SNAIL": {1: (9.89, 0.33), 5: (11.38, 0.56)},
            "FewNER": {1: (13.09, 0.63), 5: (15.46, 0.62)},
        },
        "OntoNotes->FG-NER": {
            "GPT2": {1: (14.67, 0.73), 5: (14.51, 0.94)},
            "Flair": {1: (13.44, 0.76), 5: (15.18, 0.87)},
            "ELMo": {1: (15.15, 0.77), 5: (16.08, 0.97)},
            "BERT": {1: (14.14, 0.71), 5: (15.86, 0.89)},
            "XLNet": {1: (14.13, 0.72), 5: (15.97, 0.88)},
            "FineTune": {1: (13.70, 0.85), 5: (14.81, 0.93)},
            "ProtoNet": {1: (15.45, 0.74), 5: (16.78, 0.83)},
            "MAML": {1: (16.82, 0.74), 5: (18.34, 0.92)},
            "SNAIL": {1: (20.34, 0.76), 5: (24.54, 0.89)},
            "FewNER": {1: (28.06, 1.12), 5: (32.87, 1.41)},
        },
    },
}


#: Table 5 of the paper: absolute F1 deltas (percentage points) of each
#: FEWNER ablation relative to the baseline, keyed [variant][k_shot].
#: The baseline row is (23.74, 29.50) — the Table 2 NNE column.
PAPER_TABLE5_DELTAS: dict[str, dict[int, float]] = {
    "Conditioning method A": {1: -2.34, 5: -3.43},
    "Remove character CNN": {1: -15.56, 5: -18.73},
    "Inner gradient steps: 4": {1: +0.35, 5: +0.79},
    "Inner gradient steps: 6": {1: +0.78, 5: +0.95},
    "Inner gradient steps: 8": {1: +1.02, 5: +1.47},
    "Dimensions of phi: half": {1: -2.45, 5: -3.74},     # 128 in the paper
    "Dimensions of phi: double": {1: -4.32, 5: -3.68},   # 512 in the paper
    "Training way: 3": {1: +0.46, 5: +0.93},
    "Training way: 10": {1: -1.24, 5: -1.89},
    "Training way: 15": {1: -2.31, 5: -3.25},
}

#: §4.5.2 timing on a V100, in seconds.
PAPER_TIMING = {
    "inner_step": 0.04,
    "outer_batch_1shot": 2.19,
    "outer_batch_5shot": 3.44,
    "evaluate_task_1shot": 0.36,
    "evaluate_task_5shot": 0.51,
}


@dataclass(frozen=True)
class ShapeCheck:
    """One qualitative relation and whether paper / measurement agree."""

    description: str
    holds_in_paper: bool
    holds_in_measurement: bool

    @property
    def agrees(self) -> bool:
        return self.holds_in_paper == self.holds_in_measurement


def paper_cell(table: str, setting: str, method: str, k_shot: int) -> tuple[float, float]:
    """The paper's ``(mean %, half-width %)`` for one cell."""
    try:
        return PAPER_RESULTS[table][setting][method][k_shot]
    except KeyError as exc:
        raise KeyError(
            f"no paper cell for {table}/{setting}/{method}/{k_shot}-shot"
        ) from exc


def compare_with_paper(result, table: str) -> list[ShapeCheck]:
    """Check the paper's qualitative relations against a TableResult.

    Relations checked per setting: (a) FEWNER is the best method at each
    shot count; (b) FEWNER's 5-shot beats its 1-shot.  Returns one
    :class:`ShapeCheck` per relation; ``agrees`` is True when paper and
    measurement tell the same story.
    """
    if table not in PAPER_RESULTS:
        raise KeyError(f"unknown paper table {table!r}")
    reference = PAPER_RESULTS[table]
    checks: list[ShapeCheck] = []
    for setting in result.settings:
        if setting not in reference:
            continue
        methods = list(reference[setting])
        for k in result.shots:
            paper_best = max(
                methods, key=lambda m: reference[setting][m][k][0]
            )
            measured = {
                m: result.cell(m, setting, k).f1
                for m in methods
                if any(c.method == m for c in result.cells)
            }
            measured_best = max(measured, key=lambda m: measured[m])
            checks.append(
                ShapeCheck(
                    description=f"{setting} {k}-shot: FewNER is best",
                    holds_in_paper=paper_best == "FewNER",
                    holds_in_measurement=measured_best == "FewNER",
                )
            )
        paper_gain = (
            reference[setting]["FewNER"][5][0]
            > reference[setting]["FewNER"][1][0]
        )
        measured_gain = (
            result.cell("FewNER", setting, 5).f1
            > result.cell("FewNER", setting, 1).f1
        )
        checks.append(
            ShapeCheck(
                description=f"{setting}: FewNER 5-shot > 1-shot",
                holds_in_paper=paper_gain,
                holds_in_measurement=measured_gain,
            )
        )
    return checks


def render_comparison(checks: list[ShapeCheck]) -> str:
    """Text summary of shape agreement with the paper."""
    lines = ["Shape agreement with the paper:"]
    agree = 0
    for c in checks:
        mark = "agree" if c.agrees else "DISAGREE"
        agree += int(c.agrees)
        lines.append(
            f"  [{mark:>8}] {c.description} "
            f"(paper={c.holds_in_paper}, measured={c.holds_in_measurement})"
        )
    lines.append(f"{agree}/{len(checks)} relations agree")
    return "\n".join(lines)
