"""Experiment E4 — Table 4: cross-domain cross-type adaptation.

A model trained on corpus A adapts to corpus B whose domain *and* type
inventory both differ: GENIA -> BioNLP13CG, OntoNotes -> BioNLP13CG and
OntoNotes -> FG-NER.  Per §4.4.1, 20 % of the target corpus is held out
for validation and testing happens on the remaining 80 %.
"""

from __future__ import annotations

from repro.data.splits import holdout_split
from repro.data.synthetic import generate_dataset
from repro.experiments.harness import (
    TABLE_METHODS,
    AdaptationSetting,
    TableResult,
    run_adaptation,
)

#: The three source -> target corpus transfers of Table 4.
TRANSFERS = (
    ("GENIA", "BioNLP13CG"),
    ("OntoNotes", "BioNLP13CG"),
    ("OntoNotes", "FG-NER"),
)


def build_settings(scale, seed: int = 0) -> list[AdaptationSetting]:
    cache: dict[str, object] = {}

    def corpus(name: str):
        if name not in cache:
            corpus_scale = scale.corpus_scale
            if name == "FG-NER":
                corpus_scale = max(corpus_scale, 1.0)
            if name == "BioNLP13CG":
                corpus_scale = max(corpus_scale, 0.15)
            cache[name] = generate_dataset(name, scale=corpus_scale, seed=seed)
        return cache[name]

    settings = []
    for source, target in TRANSFERS:
        _val, test = holdout_split(corpus(target), 0.2, seed=seed + 5)
        settings.append(
            AdaptationSetting(
                name=f"{source}->{target}",
                train=corpus(source),
                test=test,
                eval_seed=3000 + seed,
                train_seed=seed + 13,
            )
        )
    return settings


def run(scale, methods: tuple[str, ...] = TABLE_METHODS,
        seed: int = 0, journal=None, policy=None,
        workers: int = 0,
        task_timeout_s: float | None = None) -> TableResult:
    settings = build_settings(scale, seed=seed)
    return run_adaptation(
        "Table 4: cross-domain cross-type adaptation (5-way)",
        settings, methods, scale, journal=journal, policy=policy,
        workers=workers, task_timeout_s=task_timeout_s,
    )
