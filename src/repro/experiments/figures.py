"""Figure-1-style extension experiment: adaptation behaviour of FEWNER.

The paper's Figure 1 is an illustration, but its quantitative content is
measurable: (a) F1 as a function of test-time inner steps — fast context
adaptation should improve over the unadapted model within a handful of
steps; (b) the number of parameters each method updates at test time —
FEWNER touches only φ while MAML/FineTune move the whole network.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.episodes import EpisodeSampler
from repro.data.splits import split_by_types
from repro.data.synthetic import generate_dataset
from repro.data.vocab import CharVocabulary, Vocabulary
from repro.eval.analysis import adaptation_curve
from repro.experiments.table2 import TYPE_SPLITS, _fit_counts
from repro.meta.evaluate import fixed_episodes
from repro.meta.fewner import FewNER


@dataclass(frozen=True)
class AdaptationCurveResult:
    """Mean F1 per inner-step count, plus parameter-count comparison."""

    step_counts: tuple[int, ...]
    mean_f1: tuple[float, ...]
    adapted_parameters: int  # |φ|
    total_parameters: int  # |θ| + |φ|

    def render(self) -> str:
        lines = [
            "Adaptation curve (FEWNER, NNE unseen types, 5-way 1-shot):",
            f"{'inner steps':>12}{'mean F1':>10}",
        ]
        for steps, f1 in zip(self.step_counts, self.mean_f1):
            bar = "#" * int(round(40 * f1))
            lines.append(f"{steps:>12}{100 * f1:>9.2f}% {bar}")
        fraction = self.adapted_parameters / self.total_parameters
        lines.append(
            f"parameters adapted at test time: {self.adapted_parameters} "
            f"of {self.total_parameters} ({100 * fraction:.1f}% — θ stays fixed)"
        )
        return "\n".join(lines)


def run(scale, seed: int = 0,
        step_counts: tuple[int, ...] = (0, 1, 2, 4, 8)) -> AdaptationCurveResult:
    ds = generate_dataset("NNE", scale=scale.corpus_scale, seed=seed)
    counts = _fit_counts(TYPE_SPLITS["NNE"], len(ds.types))
    train, _val, test = split_by_types(ds, counts, seed=seed + 1)
    word_vocab = Vocabulary.from_datasets([train], min_count=2)
    char_vocab = CharVocabulary.from_datasets([train])
    adapter = FewNER(word_vocab, char_vocab, scale.n_way, scale.method_config)
    sampler = EpisodeSampler(train, scale.n_way, 1,
                             query_size=scale.query_size, seed=seed + 7)
    adapter.fit(sampler, scale.iterations_for("FewNER"))
    episodes = fixed_episodes(
        test, scale.n_way, 1, max(scale.eval_episodes // 2, 2),
        seed=7000 + seed, query_size=scale.query_size,
    )
    curves = np.array([
        [f1 for _steps, f1 in adaptation_curve(adapter, ep, step_counts)]
        for ep in episodes
    ])
    return AdaptationCurveResult(
        step_counts=tuple(step_counts),
        mean_f1=tuple(float(x) for x in curves.mean(axis=0)),
        adapted_parameters=adapter.model.context_size,
        total_parameters=adapter.model.num_parameters()
        + adapter.model.context_size,
    )
