"""Experiment E6 — §4.5.2: time-consumption analysis.

Measures, for FEWNER on the NNE intra-domain setting:

* the cost of one inner-loop gradient step (line 7 of Algorithm 1);
* the cost of one full outer meta-batch (all tasks at line 5);
* adaptation + evaluation time per test task for 1-shot and 5-shot.

The paper reports 0.04 s / inner step and 2.19 s (1-shot) / 3.44 s
(5-shot) per outer batch on a V100.  On CPU with scaled-down models the
absolute numbers differ; the *relationships* the paper highlights — inner
steps are cheap and constant across shot counts, adaptation touches only
φ, cost grows linearly with data size — are asserted by the benchmark.

Timers route through :func:`repro.obs.measure`, so every number is a
median with inter-quartile range (the same convention as
``repro perf bench``) rather than a best-case minimum, and each timed
repetition shows up as a span when a telemetry session is active.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.autodiff.tensor import Tensor, grad
from repro.data.episodes import EpisodeSampler
from repro.data.splits import split_by_types
from repro.data.synthetic import generate_dataset
from repro.data.vocab import CharVocabulary, Vocabulary
from repro.experiments.table2 import TYPE_SPLITS, _fit_counts
from repro.meta.fewner import FewNER
from repro.obs import measure

import numpy as np


def _fmt(value: float) -> str:
    """``median`` or ``median±iqr`` seconds, for plain floats too."""
    iqr = getattr(value, "iqr", 0.0)
    if iqr:
        return f"{float(value):.4f}±{iqr:.4f}"
    return f"{float(value):.4f}"


@dataclass(frozen=True)
class TimingReport:
    """Measured step costs, in seconds (median; IQR when measured).

    Fields are plain floats or :class:`repro.obs.TimingStat` (a float
    subclass carrying ``.iqr``/``.reps``); either renders.
    """

    inner_step_1shot: float
    inner_step_5shot: float
    outer_batch_1shot: float
    outer_batch_5shot: float
    adapt_task_1shot: float
    adapt_task_5shot: float
    evaluate_task_1shot: float
    evaluate_task_5shot: float

    def render(self) -> str:
        return "\n".join(
            [
                "Timing analysis (FEWNER on NNE, median seconds):",
                f"  inner step:        1-shot {_fmt(self.inner_step_1shot)}   "
                f"5-shot {_fmt(self.inner_step_5shot)}   (paper: 0.04 / 0.04 on V100)",
                f"  outer meta-batch:  1-shot {_fmt(self.outer_batch_1shot)}   "
                f"5-shot {_fmt(self.outer_batch_5shot)}   (paper: 2.19 / 3.44)",
                f"  adapt per task:    1-shot {_fmt(self.adapt_task_1shot)}   "
                f"5-shot {_fmt(self.adapt_task_5shot)}",
                f"  evaluate per task: 1-shot {_fmt(self.evaluate_task_1shot)}   "
                f"5-shot {_fmt(self.evaluate_task_5shot)}   (paper: 0.36 / 0.51)",
            ]
        )


def _measure_inner_step(adapter: FewNER, episode, repeats: int = 3) -> float:
    model = adapter.model
    batch = model.encode(list(episode.support), episode.scheme)
    alpha = Tensor(np.array(adapter.config.inner_lr))

    def one_step():
        phi = model.new_context()
        loss = model.loss(batch, phi)
        (g_phi,) = grad(loss, [phi], create_graph=True)
        _phi1 = phi - alpha * g_phi

    return measure(one_step, reps=repeats, label="timing.inner_step")


def _measure_outer_batch(adapter: FewNER, sampler: EpisodeSampler) -> float:
    # A single un-warmed measurement: ``fit`` advances the model and the
    # sampler, so repeats would time different (and non-first) batches.
    return measure(lambda: adapter.fit(sampler, 1), reps=1,
                   label="timing.outer_batch")


def _measure_adapt(adapter: FewNER, episode, repeats: int = 3) -> float:
    return measure(lambda: adapter.adapt_context(episode), reps=repeats,
                   label="timing.adapt_task")


def _measure_evaluate(adapter: FewNER, episode, repeats: int = 3) -> float:
    return measure(lambda: adapter.predict_episode(episode), reps=repeats,
                   label="timing.evaluate_task")


def run(scale, seed: int = 0) -> TimingReport:
    ds = generate_dataset("NNE", scale=scale.corpus_scale, seed=seed)
    counts = _fit_counts(TYPE_SPLITS["NNE"], len(ds.types))
    train, _val, test = split_by_types(ds, counts, seed=seed + 1)
    word_vocab = Vocabulary.from_datasets([train])
    char_vocab = CharVocabulary.from_datasets([train])
    # Timing does not need a converged model; skip the warm-up phase.
    from dataclasses import replace

    config = replace(scale.method_config, pretrain_iterations=0)
    adapter = FewNER(word_vocab, char_vocab, scale.n_way, config)
    measurements = {}
    for k in (1, 5):
        sampler = EpisodeSampler(
            train, scale.n_way, k, query_size=scale.query_size, seed=seed + 21
        )
        episode = EpisodeSampler(
            test, scale.n_way, k, query_size=scale.query_size, seed=seed + 22
        ).sample()
        measurements[f"inner_step_{k}shot"] = _measure_inner_step(adapter, episode)
        measurements[f"outer_batch_{k}shot"] = _measure_outer_batch(adapter, sampler)
        measurements[f"adapt_task_{k}shot"] = _measure_adapt(adapter, episode)
        measurements[f"evaluate_task_{k}shot"] = _measure_evaluate(adapter, episode)
    return TimingReport(**measurements)
