"""Registry mapping experiment ids to runnable harnesses."""

from __future__ import annotations

from typing import Callable

from repro.experiments import (
    figures,
    table1,
    table2,
    table3,
    table4,
    table5,
    table6,
    timing,
)
from repro.experiments.configs import get_scale

EXPERIMENTS: dict[str, Callable] = {
    "table1": table1.run,
    "table2": table2.run,
    "table3": table3.run,
    "table4": table4.run,
    "table5": table5.run,
    "table6": table6.run,
    "timing": timing.run,
    "figure_adaptation": figures.run,
}

RENDERERS: dict[str, Callable] = {
    "table1": table1.render,
    "table5": table5.render,
    "table6": table6.render,
}


def run_experiment(name: str, scale_name: str | None = None, **kwargs):
    """Run one experiment by id under a named scale preset."""
    if name not in EXPERIMENTS:
        raise KeyError(f"unknown experiment {name!r}; available: {sorted(EXPERIMENTS)}")
    scale = get_scale(scale_name)
    return EXPERIMENTS[name](scale, **kwargs)


def render_result(name: str, result) -> str:
    """Render an experiment result to the paper's table format."""
    if name in RENDERERS:
        return RENDERERS[name](result)
    if hasattr(result, "render"):
        return result.render()
    return str(result)
