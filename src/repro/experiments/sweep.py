"""Hyper-parameter sweep utility.

The paper selects hyper-parameters by grid search (§4.1.3).  This module
provides that machinery: a cartesian grid over ``MethodConfig`` fields
(nested backbone fields via ``backbone.<name>``), each point trained and
evaluated under a fixed protocol, results collected into a sortable
table.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, replace

from repro.data.episodes import EpisodeSampler
from repro.data.sentence import Dataset
from repro.data.vocab import CharVocabulary, Vocabulary
from repro.eval.aggregate import ConfidenceInterval
from repro.meta.base import MethodConfig
from repro.meta.evaluate import build_method, evaluate_method, fixed_episodes


@dataclass(frozen=True)
class SweepPoint:
    """One grid point and its score."""

    assignment: tuple[tuple[str, object], ...]
    ci: ConfidenceInterval
    train_seconds: float

    @property
    def f1(self) -> float:
        return self.ci.mean

    def describe(self) -> str:
        pairs = ", ".join(f"{k}={v}" for k, v in self.assignment)
        return f"{pairs}: {self.ci}"


def apply_assignment(config: MethodConfig,
                     assignment: dict[str, object]) -> MethodConfig:
    """Override config fields; ``backbone.<field>`` reaches the backbone."""
    plain = {k: v for k, v in assignment.items() if not k.startswith("backbone.")}
    nested = {
        k.split(".", 1)[1]: v
        for k, v in assignment.items()
        if k.startswith("backbone.")
    }
    out = replace(config, **plain) if plain else config
    if nested:
        out = out.with_backbone(**nested)
    return out


def grid_search(
    method: str,
    train: Dataset,
    test: Dataset,
    grid: dict[str, list],
    base_config: MethodConfig | None = None,
    n_way: int = 5,
    k_shot: int = 1,
    iterations: int = 20,
    eval_episodes: int = 10,
    query_size: int = 4,
    seed: int = 0,
) -> list[SweepPoint]:
    """Train/evaluate every grid point; returns points sorted best-first.

    Every point is evaluated on the *same* fixed-seed episodes so the
    comparison matches the paper's protocol.
    """
    if not grid:
        raise ValueError("empty grid")
    base_config = base_config or MethodConfig(seed=seed)
    word_vocab = Vocabulary.from_datasets([train], min_count=2)
    char_vocab = CharVocabulary.from_datasets([train])
    episodes = fixed_episodes(test, n_way, k_shot, eval_episodes,
                              seed=seed + 1000, query_size=query_size)
    keys = sorted(grid)
    points: list[SweepPoint] = []
    for values in itertools.product(*(grid[k] for k in keys)):
        assignment = dict(zip(keys, values))
        config = apply_assignment(base_config, assignment)
        adapter = build_method(method, word_vocab, char_vocab, n_way, config)
        sampler = EpisodeSampler(train, n_way, k_shot,
                                 query_size=query_size, seed=seed + 7)
        start = time.perf_counter()
        adapter.fit(sampler, iterations)
        elapsed = time.perf_counter() - start
        result = evaluate_method(adapter, episodes)
        points.append(
            SweepPoint(
                assignment=tuple(sorted(assignment.items())),
                ci=result.ci,
                train_seconds=elapsed,
            )
        )
    points.sort(key=lambda p: p.f1, reverse=True)
    return points


def render_sweep(points: list[SweepPoint]) -> str:
    """Best-first text table of sweep results."""
    lines = ["Hyper-parameter sweep (best first):"]
    for p in points:
        lines.append(f"  {p.describe()}  [{p.train_seconds:.1f}s train]")
    return "\n".join(lines)
