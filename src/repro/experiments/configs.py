"""Experiment scale presets.

The paper evaluates on 1000 episodes per configuration with models sized
for a V100.  The presets trade that budget against CPU wall-clock:

* ``smoke``   — seconds; used by the test suite to exercise every code
  path of every experiment.
* ``default`` — minutes per table; enough meta-training for the paper's
  *ordering* of methods to emerge.  Used by ``benchmarks/``.
* ``paper``   — the full configuration (1000 episodes, paper's
  hyper-parameters); runs for hours on CPU and is provided for
  completeness.

Select with the ``REPRO_SCALE`` environment variable.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.meta.base import MethodConfig
from repro.models.backbone import BackboneConfig


@dataclass(frozen=True)
class ExperimentScale:
    """Knobs that trade fidelity against wall-clock."""

    name: str
    corpus_scale: float
    train_iterations: dict = field(default_factory=dict)
    eval_episodes: int = 40
    query_size: int = 4
    n_way: int = 5
    shots: tuple[int, ...] = (1, 5)
    #: Train one model per (method, setting) on 1-shot episodes and reuse
    #: it for all shot counts (True), or train per shot like the paper
    #: (False, much slower).
    share_training_across_shots: bool = True
    method_config: MethodConfig = field(default_factory=MethodConfig)

    def iterations_for(self, method: str) -> int:
        return self.train_iterations.get(method, self.train_iterations["*"])


_SMOKE = ExperimentScale(
    name="smoke",
    corpus_scale=0.02,
    train_iterations={"*": 2},
    eval_episodes=3,
    query_size=3,
    method_config=MethodConfig(
        meta_batch=2,
        inner_steps_train=1,
        inner_steps_test=2,
        finetune_steps=2,
        pretrain_iterations=2,
        backbone=BackboneConfig(
            word_dim=12, char_dim=6, char_filters=6, hidden=8, context_dim=4
        ),
    ),
)

#: The default preset is budgeted for a single CPU core: method
#: iteration counts are meta-phase iterations (FEWNER/MAML additionally
#: run ``pretrain_iterations`` of supervised warm-up inside ``fit``).
_DEFAULT = ExperimentScale(
    name="default",
    corpus_scale=0.05,
    train_iterations={
        "*": 25,
        "FineTune": 40,
        "ProtoNet": 60,
        "SNAIL": 60,
        "MAML": 6,
        "FOMAML": 8,
        "FewNER": 16,
    },
    eval_episodes=16,
    query_size=4,
    method_config=MethodConfig(pretrain_iterations=60, meta_lr=0.002),
)

_PAPER = ExperimentScale(
    name="paper",
    corpus_scale=1.0,
    train_iterations={"*": 2000, "FewNER": 5000, "MAML": 3000},
    eval_episodes=1000,
    query_size=8,
    share_training_across_shots=False,
    method_config=MethodConfig(
        # §4.1.3 hyper-parameters, with every scale adaptation of
        # DESIGN.md §5 reverted to the paper's choice.
        inner_lr=0.1,
        meta_lr=0.0008,
        meta_optimizer="sgd",
        meta_batch=8,
        inner_steps_train=2,
        inner_steps_test=8,
        inner_loss="crf",
        second_order=True,
        inner_dropout=True,
        pretrain_iterations=0,
        backbone=BackboneConfig(
            word_dim=300,
            char_dim=100,
            char_filters=150,
            hidden=128,
            dropout=0.3,
            context_dim=256,
            conditioning="film",
        ),
    ),
)

SCALES: dict[str, ExperimentScale] = {
    "smoke": _SMOKE,
    "default": _DEFAULT,
    "paper": _PAPER,
}


def get_scale(name: str | None = None) -> ExperimentScale:
    """Resolve a preset by name, or from ``REPRO_SCALE`` (default 'default')."""
    if name is None:
        name = os.environ.get("REPRO_SCALE", "default")
    if name not in SCALES:
        raise KeyError(f"unknown scale {name!r}; available: {sorted(SCALES)}")
    return SCALES[name]
