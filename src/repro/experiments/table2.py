"""Experiment E2 — Table 2: intra-domain cross-type adaptation.

Three corpora (NNE, FG-NER, GENIA); each is split into type-disjoint
train/val/test partitions (paper §4.2.1: 52/10/15, 163/15/20, 18/8/10
types respectively), so the test episodes contain only entity types never
seen in training.
"""

from __future__ import annotations

from repro.data.splits import split_by_types
from repro.data.synthetic import generate_dataset
from repro.experiments.harness import (
    TABLE_METHODS,
    AdaptationSetting,
    TableResult,
    run_adaptation,
)

#: Paper's type-count splits per corpus.
TYPE_SPLITS = {
    "NNE": (52, 10, 15),
    "FG-NER": (163, 15, 20),
    "GENIA": (18, 8, 10),
}


def build_settings(scale, seed: int = 0) -> list[AdaptationSetting]:
    settings = []
    for name, counts in TYPE_SPLITS.items():
        corpus_scale = scale.corpus_scale
        # FG-NER has 200 types in under 4000 sentences; keep enough
        # sentences that every type stays observable (and the 20-type
        # test split can still assemble 5-shot episodes) after scaling.
        if name == "FG-NER":
            corpus_scale = max(corpus_scale, 1.0)
        ds = generate_dataset(name, scale=corpus_scale, seed=seed)
        available = len(ds.types)
        counts = _fit_counts(counts, available)
        train, _val, test = split_by_types(ds, counts, seed=seed + 1)
        settings.append(
            AdaptationSetting(name=name, train=train, test=test,
                              eval_seed=1000 + seed, train_seed=seed + 7)
        )
    return settings


def _fit_counts(counts: tuple[int, int, int], available: int) -> tuple[int, int, int]:
    """Shrink the train split if the scaled corpus surfaced fewer types."""
    train, val, test = counts
    overshoot = train + val + test - available
    if overshoot > 0:
        train = max(train - overshoot, val + test)
    if train + val + test > available:
        raise ValueError(
            f"cannot fit type split {counts} into {available} observed types"
        )
    return (train, val, test)


def run(scale, methods: tuple[str, ...] = TABLE_METHODS,
        seed: int = 0, journal=None, policy=None,
        workers: int = 0,
        task_timeout_s: float | None = None) -> TableResult:
    settings = build_settings(scale, seed=seed)
    return run_adaptation(
        "Table 2: intra-domain cross-type adaptation (5-way)",
        settings, methods, scale, journal=journal, policy=policy,
        workers=workers, task_timeout_s=task_timeout_s,
    )
