"""BIO transition constraints.

Under the BIO (IOB2) scheme, ``I-X`` may only follow ``B-X`` or ``I-X``.
These masks are used at decode time to keep Viterbi from emitting invalid
label sequences, which would otherwise break span extraction.
"""

from __future__ import annotations

import numpy as np


def _parse(tag: str) -> tuple[str, str | None]:
    if tag == "O":
        return "O", None
    if len(tag) > 2 and tag[1] == "-" and tag[0] in ("B", "I"):
        return tag[0], tag[2:]
    raise ValueError(f"not a BIO tag: {tag!r}")


def bio_transition_mask(tags: list[str]) -> np.ndarray:
    """Boolean ``(T, T)`` matrix; ``mask[i, j]`` true if ``i -> j`` is legal."""
    n = len(tags)
    mask = np.ones((n, n), dtype=bool)
    parsed = [_parse(t) for t in tags]
    for j, (prefix_j, type_j) in enumerate(parsed):
        if prefix_j != "I":
            continue
        for i, (prefix_i, type_i) in enumerate(parsed):
            legal = prefix_i in ("B", "I") and type_i == type_j
            mask[i, j] = legal
    return mask


def bio_start_mask(tags: list[str]) -> np.ndarray:
    """Boolean ``(T,)`` vector; true where a sequence may start."""
    return np.array([_parse(t)[0] != "I" for t in tags], dtype=bool)


def bio_end_mask(tags: list[str]) -> np.ndarray:
    """Boolean ``(T,)`` vector; any tag may end a sequence under BIO."""
    return np.ones(len(tags), dtype=bool)
