"""Linear-chain conditional random field (tag decoder of the backbone)."""

from repro.crf.crf import LinearChainCRF
from repro.crf.transitions import bio_transition_mask, bio_start_mask, bio_end_mask

__all__ = [
    "LinearChainCRF",
    "bio_transition_mask",
    "bio_start_mask",
    "bio_end_mask",
]
