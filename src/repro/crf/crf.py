"""Differentiable linear-chain CRF.

Implements Eq. (4) of the paper: the probability of a label sequence is
the product of pairwise potentials normalised by the partition function,
computed with the forward algorithm.  The negative log-likelihood is built
entirely from differentiable primitives, so gradients — including the
second-order gradients of FEWNER's outer loop — flow through the partition
function exactly.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.autodiff.functional import logsumexp
from repro.autodiff.tensor import Tensor
from repro.nn import init
from repro.nn.module import Module, Parameter

_NEG_INF = -1e4


class LinearChainCRF(Module):
    """CRF layer over ``num_tags`` labels.

    Parameters are a ``(T, T)`` transition matrix plus start/end scores.
    Optional boolean masks restrict transitions (BIO constraints); they are
    applied both in training (illegal transitions get a large negative
    score added) and in Viterbi decoding.
    """

    def __init__(self, num_tags: int, rng: np.random.Generator,
                 transition_mask: np.ndarray | None = None,
                 start_mask: np.ndarray | None = None):
        super().__init__()
        if num_tags < 1:
            raise ValueError(f"num_tags must be >= 1, got {num_tags}")
        self.num_tags = num_tags
        self.transitions = Parameter(init.uniform(rng, (num_tags, num_tags), 0.1))
        self.start_scores = Parameter(init.uniform(rng, (num_tags,), 0.1))
        self.end_scores = Parameter(init.uniform(rng, (num_tags,), 0.1))
        self.set_constraints(transition_mask, start_mask)

    def set_constraints(self, transition_mask: np.ndarray | None,
                        start_mask: np.ndarray | None) -> None:
        """Install (or clear) structural constraints on transitions."""
        if transition_mask is not None:
            transition_mask = np.asarray(transition_mask, dtype=bool)
            if transition_mask.shape != (self.num_tags, self.num_tags):
                raise ValueError("transition mask shape mismatch")
        if start_mask is not None:
            start_mask = np.asarray(start_mask, dtype=bool)
            if start_mask.shape != (self.num_tags,):
                raise ValueError("start mask shape mismatch")
        self._transition_penalty = (
            np.where(transition_mask, 0.0, _NEG_INF)
            if transition_mask is not None
            else np.zeros((self.num_tags, self.num_tags))
        )
        self._start_penalty = (
            np.where(start_mask, 0.0, _NEG_INF)
            if start_mask is not None
            else np.zeros(self.num_tags)
        )

    # ------------------------------------------------------------------
    # Training-side quantities (differentiable)
    # ------------------------------------------------------------------
    def _scores(self) -> tuple[Tensor, Tensor]:
        trans = self.transitions + Tensor(self._transition_penalty)
        start = self.start_scores + Tensor(self._start_penalty)
        return trans, start

    def log_partition(self, emissions: Tensor) -> Tensor:
        """Forward-algorithm log Z for ``(L, T)`` emissions."""
        length = emissions.shape[0]
        trans, start = self._scores()
        alpha = start + emissions[0, :]
        for t in range(1, length):
            # alpha[i] + trans[i, j] + emission[t, j], logsumexp over i
            scores = alpha.reshape((self.num_tags, 1)) + trans
            alpha = logsumexp(scores, axis=0) + emissions[t, :]
        alpha = alpha + self.end_scores
        return logsumexp(alpha)

    def gold_score(self, emissions: Tensor, tags: np.ndarray) -> Tensor:
        """Unnormalised score of the gold tag path."""
        tags = np.asarray(tags, dtype=np.intp)
        length = emissions.shape[0]
        if tags.shape != (length,):
            raise ValueError(
                f"tags shape {tags.shape} does not match emissions length {length}"
            )
        trans, start = self._scores()
        score = start[int(tags[0])] + emissions[0, int(tags[0])]
        for t in range(1, length):
            score = score + trans[int(tags[t - 1]), int(tags[t])]
            score = score + emissions[t, int(tags[t])]
        return score + self.end_scores[int(tags[-1])]

    def nll(self, emissions: Tensor, tags: np.ndarray) -> Tensor:
        """Negative log-likelihood of one sentence."""
        return self.log_partition(emissions) - self.gold_score(emissions, tags)

    def batch_nll(self, emissions_list: list[Tensor],
                  tags_list: list[np.ndarray]) -> Tensor:
        """Mean NLL over a batch of variable-length sentences."""
        if len(emissions_list) != len(tags_list):
            raise ValueError("batch size mismatch between emissions and tags")
        if not emissions_list:
            raise ValueError("empty batch")
        losses = [self.nll(e, t) for e, t in zip(emissions_list, tags_list)]
        total = losses[0]
        for loss in losses[1:]:
            total = total + loss
        return total / Tensor(np.array(float(len(losses))))

    def batch_nll_padded(self, emissions: Tensor, tags: np.ndarray,
                         mask: np.ndarray) -> Tensor:
        """Mean NLL over a padded batch.

        ``emissions`` is ``(B, L, T)``; ``tags`` is ``(B, L)`` integer ids
        (values at padded positions are ignored); ``mask`` is ``(B, L)``
        with 1 for real tokens.  Vectorising across the batch keeps the
        autodiff graph size proportional to L rather than B * L.

        When the fused fast path is enabled (see
        :func:`repro.perf.fastpath.fastpath`) this delegates to
        :meth:`batch_nll_fast`, which computes the same mean NLL and
        first-order gradients as a single tape node.
        """
        from repro.autodiff.tensor import where
        from repro.perf.fastpath import fused_nll_enabled

        if fused_nll_enabled():
            return self.batch_nll_fast(emissions, tags, mask)

        tags = np.asarray(tags, dtype=np.intp)
        mask = np.asarray(mask, dtype=float)
        batch, length, num_tags = emissions.shape
        if tags.shape != (batch, length) or mask.shape != (batch, length):
            raise ValueError("tags/mask shape mismatch with emissions")
        if mask[:, 0].min() < 1:
            raise ValueError("every sequence must have at least one token")
        trans, start = self._scores()

        # --- log partition, batched forward algorithm ----------------
        alpha = start.reshape((1, num_tags)) + emissions[:, 0, :]
        for t in range(1, length):
            scores = (
                alpha.reshape((batch, num_tags, 1))
                + trans.reshape((1, num_tags, num_tags))
                + emissions[:, t, :].reshape((batch, 1, num_tags))
            )
            new_alpha = logsumexp(scores, axis=1)
            step_mask = mask[:, t : t + 1]  # (B, 1), constant
            alpha = where(
                np.broadcast_to(step_mask > 0, alpha.shape), new_alpha, alpha
            )
        log_z = logsumexp(alpha + self.end_scores.reshape((1, num_tags)), axis=1)

        # --- gold path score, batched ---------------------------------
        rows = np.arange(batch)
        emit_gold = emissions[
            rows[:, None], np.arange(length)[None, :], tags
        ]  # (B, L)
        gold = start[tags[:, 0]] + (emit_gold * Tensor(mask)).sum(axis=1)
        if length > 1:
            trans_gold = trans[tags[:, :-1], tags[:, 1:]]  # (B, L-1)
            gold = gold + (trans_gold * Tensor(mask[:, 1:])).sum(axis=1)
        last_index = mask.sum(axis=1).astype(np.intp) - 1
        last_tags = tags[rows, last_index]
        gold = gold + self.end_scores[last_tags]

        nll = log_z - gold
        return nll.sum() / Tensor(np.array(float(batch)))

    def batch_nll_fast(self, emissions: Tensor, tags: np.ndarray,
                       mask: np.ndarray) -> Tensor:
        """Mean NLL over a padded batch as one fused tape node.

        Numerically equivalent to :meth:`batch_nll_padded` (same value,
        same first-order gradients, from one numpy forward-backward pass)
        but the autodiff graph collapses to a single node.  First-order
        only: backward with ``create_graph=True`` raises ``RuntimeError``.
        """
        from repro.perf.kernels import crf_nll_fused

        return crf_nll_fused(self, emissions, tags, mask)

    # ------------------------------------------------------------------
    # Decoding (pure numpy; no gradients needed)
    # ------------------------------------------------------------------
    def viterbi_decode_batch(self, emissions, mask) -> list[list[int]]:
        """Vectorised Viterbi over padded ``(B, L, T)`` emissions.

        ``mask`` is ``(B, L)`` with 1 for real tokens.  Returns one path
        per sentence, truncated to its true length — bit-identical to
        calling :meth:`viterbi_decode` on each unpadded row.
        """
        from repro.perf.kernels import viterbi_decode_batch

        self._check_num_tags(emissions)
        return viterbi_decode_batch(
            self.transitions.data + self._transition_penalty,
            self.start_scores.data + self._start_penalty,
            self.end_scores.data,
            emissions,
            mask,
        )

    def argmax_decode_batch(self, emissions, mask) -> list[list[int]]:
        """Vectorised greedy decode over padded ``(B, L, T)`` emissions.

        Bit-identical to calling :meth:`argmax_decode` on each unpadded
        row, including the end-score bonus at each sentence's own last
        real token.
        """
        from repro.perf.kernels import argmax_decode_batch

        self._check_num_tags(emissions)
        return argmax_decode_batch(
            self.transitions.data + self._transition_penalty,
            self.start_scores.data + self._start_penalty,
            self.end_scores.data,
            emissions,
            mask,
        )

    def _check_num_tags(self, emissions) -> None:
        data = emissions.data if isinstance(emissions, Tensor) else emissions
        num_tags = np.asarray(data).shape[-1]
        if num_tags != self.num_tags:
            raise ValueError(
                f"emissions have {num_tags} tags, CRF expects {self.num_tags}"
            )

    def viterbi_decode(self, emissions: np.ndarray) -> list[int]:
        """Most-likely tag sequence for ``(L, T)`` emission scores."""
        emissions = np.asarray(
            emissions.data if isinstance(emissions, Tensor) else emissions
        )
        length, num_tags = emissions.shape
        if num_tags != self.num_tags:
            raise ValueError(
                f"emissions have {num_tags} tags, CRF expects {self.num_tags}"
            )
        trans = self.transitions.data + self._transition_penalty
        start = self.start_scores.data + self._start_penalty
        score = start + emissions[0]
        backptr = np.zeros((length, num_tags), dtype=np.intp)
        for t in range(1, length):
            candidate = score[:, None] + trans  # (from, to)
            backptr[t] = candidate.argmax(axis=0)
            score = candidate.max(axis=0) + emissions[t]
        score = score + self.end_scores.data
        best = [int(score.argmax())]
        for t in range(length - 1, 0, -1):
            best.append(int(backptr[t, best[-1]]))
        best.reverse()
        return best

    def argmax_decode(self, emissions: np.ndarray) -> list[int]:
        """Greedy left-to-right decode for ``(L, T)`` emission scores.

        A beam-1 approximation of Viterbi: at each position the best tag
        is chosen given only the previously-committed tag, so structural
        constraints (transition/start masks) are still respected but no
        backtracking happens.  Exact whenever the transition matrix is
        uniform (e.g. all zeros); elsewhere it is the cheap degraded
        answer the serving layer falls back to when a request's deadline
        cannot afford full Viterbi (see ``docs/serving.md``).
        """
        emissions = np.asarray(
            emissions.data if isinstance(emissions, Tensor) else emissions
        )
        length, num_tags = emissions.shape
        if num_tags != self.num_tags:
            raise ValueError(
                f"emissions have {num_tags} tags, CRF expects {self.num_tags}"
            )
        trans = self.transitions.data + self._transition_penalty
        start = self.start_scores.data + self._start_penalty
        scores = start + emissions[0]
        if length == 1:
            scores = scores + self.end_scores.data
        tags = [int(scores.argmax())]
        for t in range(1, length):
            scores = trans[tags[-1]] + emissions[t]
            if t == length - 1:
                scores = scores + self.end_scores.data
            tags.append(int(scores.argmax()))
        return tags

    def viterbi_top_k(self, emissions: np.ndarray, k: int = 3) -> list[tuple[list[int], float]]:
        """The ``k`` best tag sequences with their scores (best first).

        List-Viterbi where each DP cell keeps its k best incoming partial
        paths, found with a heap-based k-way merge of the per-predecessor
        candidate streams: each predecessor beam is already sorted
        best-first and its extensions shift every score by the same
        constant, so the merge pops exactly k winners instead of sorting
        all ``T * k`` candidates.  Tie-breaking matches the full-sort
        scan (:meth:`_viterbi_top_k_reference`): equal scores prefer the
        smaller previous tag, then the better rank within its beam.
        """
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        emissions = np.asarray(
            emissions.data if isinstance(emissions, Tensor) else emissions
        )
        length, num_tags = emissions.shape
        self._check_num_tags(emissions)
        trans = self.transitions.data + self._transition_penalty
        start = self.start_scores.data + self._start_penalty
        # beams[tag] = list of (score, path) kept sorted best-first.
        beams: list[list[tuple[float, list[int]]]] = [
            [(float(start[t] + emissions[0, t]), [t])] for t in range(num_tags)
        ]
        for step in range(1, length):
            new_beams: list[list[tuple[float, list[int]]]] = []
            for tag in range(num_tags):
                # Stream heads: best extension from each predecessor beam.
                heap = [
                    (
                        -(beams[prev][0][0] + trans[prev, tag]
                          + emissions[step, tag]),
                        prev,
                        0,
                    )
                    for prev in range(num_tags)
                ]
                heapq.heapify(heap)
                kept: list[tuple[float, list[int]]] = []
                while heap and len(kept) < k:
                    neg_score, prev, rank = heapq.heappop(heap)
                    kept.append((-neg_score, beams[prev][rank][1] + [tag]))
                    if rank + 1 < len(beams[prev]):
                        heapq.heappush(
                            heap,
                            (
                                -(beams[prev][rank + 1][0] + trans[prev, tag]
                                  + emissions[step, tag]),
                                prev,
                                rank + 1,
                            ),
                        )
                new_beams.append(kept)
            beams = new_beams
        finals = [
            (
                -(beams[tag][rank][0] + float(self.end_scores.data[tag])),
                tag,
                rank,
            )
            for tag in range(num_tags)
            for rank in range(len(beams[tag]))
        ]
        return [
            (beams[tag][rank][1], -neg_score)
            for neg_score, tag, rank in heapq.nsmallest(k, finals)
        ]

    def _viterbi_top_k_reference(self, emissions: np.ndarray,
                                 k: int = 3) -> list[tuple[list[int], float]]:
        """The original O(T²·k log(T·k)) full-sort list-Viterbi scan.

        Kept as the parity oracle for :meth:`viterbi_top_k` — the heap
        merge must reproduce its output, ties included, exactly.
        """
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        emissions = np.asarray(
            emissions.data if isinstance(emissions, Tensor) else emissions
        )
        length, num_tags = emissions.shape
        self._check_num_tags(emissions)
        trans = self.transitions.data + self._transition_penalty
        start = self.start_scores.data + self._start_penalty
        beams: list[list[tuple[float, list[int]]]] = [
            [(float(start[t] + emissions[0, t]), [t])] for t in range(num_tags)
        ]
        for step in range(1, length):
            new_beams: list[list[tuple[float, list[int]]]] = []
            for tag in range(num_tags):
                candidates: list[tuple[float, list[int]]] = []
                for prev_tag in range(num_tags):
                    for score, path in beams[prev_tag]:
                        candidates.append(
                            (
                                score + trans[prev_tag, tag]
                                + emissions[step, tag],
                                path + [tag],
                            )
                        )
                candidates.sort(key=lambda item: item[0], reverse=True)
                new_beams.append(candidates[:k])
            beams = new_beams
        finals: list[tuple[float, list[int]]] = []
        for tag in range(num_tags):
            for score, path in beams[tag]:
                finals.append((score + float(self.end_scores.data[tag]), path))
        finals.sort(key=lambda item: item[0], reverse=True)
        return [(path, score) for score, path in finals[:k]]

    def marginals(self, emissions: Tensor) -> np.ndarray:
        """Posterior tag marginals ``(L, T)`` via forward-backward (numpy)."""
        e = emissions.data if isinstance(emissions, Tensor) else np.asarray(emissions)
        length = e.shape[0]
        trans = self.transitions.data + self._transition_penalty
        start = self.start_scores.data + self._start_penalty
        end = self.end_scores.data

        def lse(x, axis):
            m = x.max(axis=axis, keepdims=True)
            return (m + np.log(np.exp(x - m).sum(axis=axis, keepdims=True))).squeeze(axis)

        alpha = np.zeros((length, self.num_tags))
        alpha[0] = start + e[0]
        for t in range(1, length):
            alpha[t] = lse(alpha[t - 1][:, None] + trans, axis=0) + e[t]
        beta = np.zeros((length, self.num_tags))
        beta[-1] = end
        for t in range(length - 2, -1, -1):
            beta[t] = lse(trans + (e[t + 1] + beta[t + 1])[None, :], axis=1)
        log_marg = alpha + beta
        log_z = lse(alpha[-1] + end, axis=0)
        return np.exp(log_marg - log_z)
