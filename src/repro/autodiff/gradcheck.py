"""Finite-difference verification of analytic gradients.

Used throughout the test suite to certify every primitive and the composed
models, including the second-order gradients FEWNER's outer loop needs.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.autodiff.tensor import Tensor, grad


def numerical_grad(
    fn: Callable[..., Tensor],
    inputs: Sequence[Tensor],
    index: int,
    eps: float = 1e-6,
) -> np.ndarray:
    """Central-difference gradient of scalar ``fn(*inputs)`` w.r.t. one input."""
    target = inputs[index]
    flat = target.data.reshape(-1)
    out = np.zeros_like(flat)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        hi = float(fn(*inputs).data)
        flat[i] = orig - eps
        lo = float(fn(*inputs).data)
        flat[i] = orig
        out[i] = (hi - lo) / (2.0 * eps)
    return out.reshape(target.shape)


def gradcheck(
    fn: Callable[..., Tensor],
    inputs: Sequence[Tensor],
    eps: float = 1e-6,
    atol: float = 1e-5,
    rtol: float = 1e-4,
) -> bool:
    """Compare analytic and numerical gradients of a scalar-valued ``fn``.

    Raises ``AssertionError`` with a diagnostic on mismatch; returns True
    on success so it can be used directly in assertions.
    """
    out = fn(*inputs)
    if out.size != 1:
        raise ValueError("gradcheck requires a scalar-valued function")
    diff_inputs = [t for t in inputs if t.requires_grad]
    analytic = grad(out, diff_inputs, allow_unused=True)
    for t, a in zip(diff_inputs, analytic):
        idx = list(inputs).index(t)
        n = numerical_grad(fn, inputs, idx, eps=eps)
        a_data = np.zeros_like(t.data) if a is None else a.data
        if not np.allclose(a_data, n, atol=atol, rtol=rtol):
            worst = np.abs(a_data - n).max()
            raise AssertionError(
                f"gradcheck failed for input {idx}: max abs error {worst:.3e}\n"
                f"analytic:\n{a_data}\nnumerical:\n{n}"
            )
    return True
