"""Reverse-mode automatic differentiation over numpy arrays.

This package is the substrate that replaces PyTorch autograd in this
reproduction.  The design mirrors a miniature define-by-run framework:

* :class:`~repro.autodiff.tensor.Tensor` wraps a ``numpy.ndarray`` and
  records the operation that produced it.
* Every operation's vector-Jacobian product (VJP) is itself written in
  terms of ``Tensor`` operations, so calling :func:`grad` with
  ``create_graph=True`` produces gradients that are themselves nodes of a
  differentiable graph.  This is what makes the second-order outer update
  of FEWNER/MAML (a gradient *through* a gradient) computable exactly.
* :func:`~repro.autodiff.gradcheck.gradcheck` verifies any op or composite
  function against central finite differences, including double-backward.
"""

from repro.autodiff.tensor import (
    Tensor,
    tensor,
    zeros,
    ones,
    full,
    arange,
    no_grad,
    enable_grad,
    is_grad_enabled,
    grad,
    concatenate,
    stack,
    where,
    maximum,
    minimum,
    matmul,
    broadcast_to,
    exp,
    log,
    tanh,
    sigmoid,
    relu,
    sqrt,
    abs_,
    clip,
    scatter_add,
)
from repro.autodiff.functional import (
    softmax,
    log_softmax,
    logsumexp,
    cross_entropy,
    nll_loss,
    mse_loss,
    dropout_mask,
)
from repro.autodiff.gradcheck import gradcheck, numerical_grad

__all__ = [
    "Tensor",
    "tensor",
    "zeros",
    "ones",
    "full",
    "arange",
    "no_grad",
    "enable_grad",
    "is_grad_enabled",
    "grad",
    "concatenate",
    "stack",
    "where",
    "maximum",
    "minimum",
    "matmul",
    "broadcast_to",
    "exp",
    "log",
    "tanh",
    "sigmoid",
    "relu",
    "sqrt",
    "abs_",
    "clip",
    "scatter_add",
    "softmax",
    "log_softmax",
    "logsumexp",
    "cross_entropy",
    "nll_loss",
    "mse_loss",
    "dropout_mask",
    "gradcheck",
    "numerical_grad",
]
