"""Composite differentiable functions built from tensor primitives.

Because these are compositions of primitives whose VJPs are themselves
differentiable, everything here supports higher-order gradients.
"""

from __future__ import annotations

import numpy as np

from repro.autodiff.tensor import (
    Tensor,
    _ensure_tensor,
    exp,
    getitem,
    log,
    max_,
    mean,
    mul,
    sub,
    sum_,
)


def logsumexp(x: Tensor, axis=None, keepdims: bool = False) -> Tensor:
    """Numerically-stable log-sum-exp reduction."""
    x = _ensure_tensor(x)
    m = max_(x, axis=axis, keepdims=True)
    shifted = sub(x, m)
    s = log(sum_(exp(shifted), axis=axis, keepdims=True))
    out = m + s
    if keepdims:
        return out
    if axis is None:
        return out.reshape(())
    axes = (axis,) if isinstance(axis, int) else tuple(axis)
    axes = {a % x.ndim for a in axes}
    squeezed = tuple(d for i, d in enumerate(out.shape) if i not in axes)
    return out.reshape(squeezed)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Log of the softmax along ``axis``."""
    return sub(x, logsumexp(x, axis=axis, keepdims=True))


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Softmax along ``axis``."""
    return exp(log_softmax(x, axis=axis))


def nll_loss(log_probs: Tensor, targets, reduction: str = "mean") -> Tensor:
    """Negative log-likelihood given ``(N, C)`` log-probabilities.

    ``targets`` is an integer array of shape ``(N,)``.
    """
    targets = np.asarray(targets, dtype=np.intp)
    n = log_probs.shape[0]
    picked = getitem(log_probs, (np.arange(n), targets))
    loss = mul(Tensor(np.array(-1.0)), picked)
    if reduction == "mean":
        return mean(loss)
    if reduction == "sum":
        return sum_(loss)
    if reduction == "none":
        return loss
    raise ValueError(f"unknown reduction: {reduction!r}")


def cross_entropy(logits: Tensor, targets, reduction: str = "mean") -> Tensor:
    """Softmax cross-entropy over the last axis of ``(N, C)`` logits."""
    return nll_loss(log_softmax(logits, axis=-1), targets, reduction=reduction)


def mse_loss(pred: Tensor, target: Tensor, reduction: str = "mean") -> Tensor:
    """Mean squared error."""
    diff = sub(pred, _ensure_tensor(target))
    sq = mul(diff, diff)
    if reduction == "mean":
        return mean(sq)
    if reduction == "sum":
        return sum_(sq)
    return sq


def dropout_mask(shape, p: float, rng: np.random.Generator) -> Tensor:
    """Inverted-dropout mask: scale kept units by ``1/(1-p)``.

    Returned as a constant tensor; multiply activations by it during
    training and skip it entirely at evaluation time.
    """
    if not 0.0 <= p < 1.0:
        raise ValueError(f"dropout probability must be in [0, 1), got {p}")
    if p == 0.0:
        return Tensor(np.ones(shape))
    keep = (rng.random(shape) >= p).astype(float) / (1.0 - p)
    return Tensor(keep)
