"""Core tensor type and differentiable primitive operations.

Every primitive records its parents and a VJP (vector-Jacobian product)
callback.  VJP callbacks are written with ``Tensor`` operations, never raw
numpy, so that running backpropagation with ``create_graph=True`` yields
gradients that are themselves differentiable — the property FEWNER's
second-order outer update relies on.
"""

from __future__ import annotations

import contextlib
import threading
from typing import Callable, Iterable, Sequence

import numpy as np

DEFAULT_DTYPE = np.float64

_state = threading.local()

# Optional tape profiler (repro.obs.tapeprof).  A module-global slot
# instead of a thread-local keeps the disabled cost at one global load +
# ``is None`` check on the recording path only.
_tape_profiler = None


def set_tape_profiler(profiler) -> None:
    """Install (or clear, with ``None``) the active tape profiler.

    The profiler receives ``_record(tensor)`` for every graph node
    created by :func:`_make` and ``_record_backward(n_nodes)`` for every
    backward traversal.  Used by ``repro.obs.tapeprof.profile_tape``.
    """
    global _tape_profiler
    _tape_profiler = profiler


def is_grad_enabled() -> bool:
    """Return whether new operations are currently recorded on the tape."""
    return getattr(_state, "grad_enabled", True)


def _set_grad_enabled(mode: bool) -> None:
    _state.grad_enabled = mode


@contextlib.contextmanager
def no_grad():
    """Context manager that disables graph recording inside its block."""
    prev = is_grad_enabled()
    _set_grad_enabled(False)
    try:
        yield
    finally:
        _set_grad_enabled(prev)


@contextlib.contextmanager
def enable_grad():
    """Context manager that re-enables graph recording inside its block."""
    prev = is_grad_enabled()
    _set_grad_enabled(True)
    try:
        yield
    finally:
        _set_grad_enabled(prev)


class _Node:
    """Record of one operation in the autodiff graph."""

    __slots__ = ("parents", "vjps")

    def __init__(
        self,
        parents: Sequence["Tensor"],
        vjps: Sequence[Callable[["Tensor"], "Tensor | None"] | None],
    ):
        self.parents = tuple(parents)
        self.vjps = tuple(vjps)


class Tensor:
    """A numpy-backed array that supports reverse-mode differentiation."""

    __slots__ = ("data", "requires_grad", "grad", "_node", "__weakref__")

    def __init__(self, data, requires_grad: bool = False, dtype=None):
        if isinstance(data, Tensor):
            data = data.data
        arr = np.asarray(data, dtype=dtype or DEFAULT_DTYPE)
        self.data = arr
        self.requires_grad = bool(requires_grad)
        self.grad: Tensor | None = None
        self._node: _Node | None = None

    # ------------------------------------------------------------------
    # Basic introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_note = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor({np.array2string(self.data, precision=4)}{grad_note})"

    def item(self) -> float:
        return float(self.data)

    def numpy(self) -> np.ndarray:
        """Return the underlying array (a view; do not mutate)."""
        return self.data

    def detach(self) -> "Tensor":
        """Return a tensor sharing data but cut from the graph."""
        return Tensor(self.data, requires_grad=False)

    def copy(self) -> "Tensor":
        return Tensor(self.data.copy(), requires_grad=False)

    # ------------------------------------------------------------------
    # Graph plumbing
    # ------------------------------------------------------------------
    def _creates_graph(self) -> bool:
        return self.requires_grad and is_grad_enabled()

    def backward(self, grad_output: "Tensor | None" = None, create_graph: bool = False) -> None:
        """Backpropagate from this tensor, accumulating into ``.grad``.

        ``grad_output`` defaults to ones (scalar outputs only need that).
        The topological order is computed once and shared between leaf
        collection and the reverse sweep, so the graph is traversed a
        single time per call.
        """
        if grad_output is None:
            if self.size != 1:
                raise ValueError("backward() without grad_output requires a scalar tensor")
            grad_output = Tensor(np.ones_like(self.data))
        order = _topo_order([self])
        leaves = [t for t in order if t._node is None and t.requires_grad]
        grads = _backprop([self], [grad_output], leaves, create_graph,
                          order=order)
        for leaf, g in zip(leaves, grads):
            if g is None:
                continue
            if leaf.grad is None:
                leaf.grad = g
            else:
                leaf.grad = leaf.grad + g

    # ------------------------------------------------------------------
    # Arithmetic operators
    # ------------------------------------------------------------------
    def __add__(self, other):
        return add(self, _ensure_tensor(other))

    def __radd__(self, other):
        return add(_ensure_tensor(other), self)

    def __sub__(self, other):
        return sub(self, _ensure_tensor(other))

    def __rsub__(self, other):
        return sub(_ensure_tensor(other), self)

    def __mul__(self, other):
        return mul(self, _ensure_tensor(other))

    def __rmul__(self, other):
        return mul(_ensure_tensor(other), self)

    def __truediv__(self, other):
        return div(self, _ensure_tensor(other))

    def __rtruediv__(self, other):
        return div(_ensure_tensor(other), self)

    def __neg__(self):
        return neg(self)

    def __pow__(self, exponent):
        return pow_(self, exponent)

    def __matmul__(self, other):
        return matmul(self, _ensure_tensor(other))

    def __getitem__(self, index):
        return getitem(self, index)

    # Comparison operators intentionally return plain numpy arrays: they
    # are non-differentiable and used for masks.
    def __gt__(self, other):
        return self.data > _raw(other)

    def __lt__(self, other):
        return self.data < _raw(other)

    def __ge__(self, other):
        return self.data >= _raw(other)

    def __le__(self, other):
        return self.data <= _raw(other)

    # ------------------------------------------------------------------
    # Shape / reduction helpers as methods
    # ------------------------------------------------------------------
    def reshape(self, *shape):
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        return reshape(self, shape)

    def transpose(self, axes: Sequence[int] | None = None):
        return transpose(self, axes)

    @property
    def T(self):
        return transpose(self, None)

    def sum(self, axis=None, keepdims: bool = False):
        return sum_(self, axis=axis, keepdims=keepdims)

    def mean(self, axis=None, keepdims: bool = False):
        return mean(self, axis=axis, keepdims=keepdims)

    def max(self, axis=None, keepdims: bool = False):
        return max_(self, axis=axis, keepdims=keepdims)

    def min(self, axis=None, keepdims: bool = False):
        return neg(max_(neg(self), axis=axis, keepdims=keepdims))

    def exp(self):
        return exp(self)

    def log(self):
        return log(self)

    def tanh(self):
        return tanh(self)

    def sigmoid(self):
        return sigmoid(self)

    def relu(self):
        return relu(self)

    def sqrt(self):
        return sqrt(self)

    def argmax(self, axis=None):
        return self.data.argmax(axis=axis)


def _ensure_tensor(value) -> Tensor:
    return value if isinstance(value, Tensor) else Tensor(value)


def _raw(value):
    return value.data if isinstance(value, Tensor) else value


def tensor(data, requires_grad: bool = False, dtype=None) -> Tensor:
    """Construct a :class:`Tensor` (convenience mirror of the class)."""
    return Tensor(data, requires_grad=requires_grad, dtype=dtype)


def zeros(shape, requires_grad: bool = False) -> Tensor:
    return Tensor(np.zeros(shape, dtype=DEFAULT_DTYPE), requires_grad=requires_grad)


def ones(shape, requires_grad: bool = False) -> Tensor:
    return Tensor(np.ones(shape, dtype=DEFAULT_DTYPE), requires_grad=requires_grad)


def full(shape, fill_value, requires_grad: bool = False) -> Tensor:
    return Tensor(np.full(shape, fill_value, dtype=DEFAULT_DTYPE), requires_grad=requires_grad)


def arange(*args, requires_grad: bool = False) -> Tensor:
    return Tensor(np.arange(*args, dtype=DEFAULT_DTYPE), requires_grad=requires_grad)


# ----------------------------------------------------------------------
# Graph construction helper
# ----------------------------------------------------------------------

def _make(
    data: np.ndarray,
    parents: Sequence[Tensor],
    vjps: Sequence[Callable[[Tensor], Tensor | None] | None],
) -> Tensor:
    """Create an output tensor, recording the op if any parent needs grad."""
    out = Tensor(data)
    # Hot path: explicit loop beats any()+generator for the tiny parent
    # tuples every op produces.
    if getattr(_state, "grad_enabled", True):
        for p in parents:
            if p.requires_grad:
                out.requires_grad = True
                out._node = _Node(parents, vjps)
                if _tape_profiler is not None:
                    _tape_profiler._record(out)
                break
    return out


def _unbroadcast(grad: Tensor, shape: tuple[int, ...]) -> Tensor:
    """Reduce ``grad`` down to ``shape`` by summing broadcast dimensions."""
    if grad.shape == shape:
        return grad
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = sum_(grad, axis=tuple(range(extra)), keepdims=False)
    axes = tuple(i for i, dim in enumerate(shape) if dim == 1 and grad.shape[i] != 1)
    if axes:
        grad = sum_(grad, axis=axes, keepdims=True)
    if grad.shape != shape:
        grad = reshape(grad, shape)
    return grad


# ----------------------------------------------------------------------
# Elementwise arithmetic
# ----------------------------------------------------------------------

def add(a: Tensor, b: Tensor) -> Tensor:
    return _make(
        a.data + b.data,
        (a, b),
        (
            lambda g: _unbroadcast(g, a.shape),
            lambda g: _unbroadcast(g, b.shape),
        ),
    )


def sub(a: Tensor, b: Tensor) -> Tensor:
    return _make(
        a.data - b.data,
        (a, b),
        (
            lambda g: _unbroadcast(g, a.shape),
            lambda g: _unbroadcast(neg(g), b.shape),
        ),
    )


def mul(a: Tensor, b: Tensor) -> Tensor:
    return _make(
        a.data * b.data,
        (a, b),
        (
            lambda g: _unbroadcast(mul(g, b), a.shape),
            lambda g: _unbroadcast(mul(g, a), b.shape),
        ),
    )


def div(a: Tensor, b: Tensor) -> Tensor:
    return _make(
        a.data / b.data,
        (a, b),
        (
            lambda g: _unbroadcast(div(g, b), a.shape),
            lambda g: _unbroadcast(neg(div(mul(g, a), mul(b, b))), b.shape),
        ),
    )


def neg(a: Tensor) -> Tensor:
    return _make(-a.data, (a,), (lambda g: neg(g),))


def pow_(a: Tensor, exponent: float) -> Tensor:
    """Raise to a constant (non-tensor) power."""
    exponent = float(exponent)
    return _make(
        a.data**exponent,
        (a,),
        (lambda g: mul(g, mul(Tensor(np.array(exponent)), pow_(a, exponent - 1.0))),),
    )


def exp(a: Tensor) -> Tensor:
    out_data = np.exp(a.data)
    out = _make(out_data, (a,), (None,))
    if out._node is not None:
        out._node = _Node((a,), (lambda g: mul(g, out),))
    return out


def log(a: Tensor) -> Tensor:
    return _make(np.log(a.data), (a,), (lambda g: div(g, a),))


def sqrt(a: Tensor) -> Tensor:
    out = _make(np.sqrt(a.data), (a,), (None,))
    if out._node is not None:
        half = Tensor(np.array(0.5))
        out._node = _Node((a,), (lambda g: div(mul(g, half), out),))
    return out


def tanh(a: Tensor) -> Tensor:
    out = _make(np.tanh(a.data), (a,), (None,))
    if out._node is not None:
        out._node = _Node((a,), (lambda g: mul(g, sub(Tensor(np.array(1.0)), mul(out, out))),))
    return out


def sigmoid(a: Tensor) -> Tensor:
    out = _make(1.0 / (1.0 + np.exp(-a.data)), (a,), (None,))
    if out._node is not None:
        out._node = _Node(
            (a,), (lambda g: mul(g, mul(out, sub(Tensor(np.array(1.0)), out))),)
        )
    return out


def relu(a: Tensor) -> Tensor:
    mask = (a.data > 0).astype(a.data.dtype)
    return _make(a.data * mask, (a,), (lambda g: mul(g, Tensor(mask)),))


def abs_(a: Tensor) -> Tensor:
    sign = np.sign(a.data)
    return _make(np.abs(a.data), (a,), (lambda g: mul(g, Tensor(sign)),))


def clip(a: Tensor, low: float, high: float) -> Tensor:
    """Clamp values; gradient is passed through inside the active range."""
    mask = ((a.data >= low) & (a.data <= high)).astype(a.data.dtype)
    return _make(np.clip(a.data, low, high), (a,), (lambda g: mul(g, Tensor(mask)),))


def where(condition, a: Tensor, b: Tensor) -> Tensor:
    """Select from ``a`` where ``condition`` else ``b`` (condition constant)."""
    cond = _raw(condition).astype(bool)
    a = _ensure_tensor(a)
    b = _ensure_tensor(b)
    mask = cond.astype(DEFAULT_DTYPE)
    inv = 1.0 - mask
    return _make(
        np.where(cond, a.data, b.data),
        (a, b),
        (
            lambda g: _unbroadcast(mul(g, Tensor(mask)), a.shape),
            lambda g: _unbroadcast(mul(g, Tensor(inv)), b.shape),
        ),
    )


def maximum(a: Tensor, b: Tensor) -> Tensor:
    a = _ensure_tensor(a)
    b = _ensure_tensor(b)
    return where(a.data >= b.data, a, b)


def minimum(a: Tensor, b: Tensor) -> Tensor:
    a = _ensure_tensor(a)
    b = _ensure_tensor(b)
    return where(a.data <= b.data, a, b)


# ----------------------------------------------------------------------
# Linear algebra
# ----------------------------------------------------------------------

def matmul(a: Tensor, b: Tensor) -> Tensor:
    """Matrix product with the usual 1-D/2-D/batched numpy semantics."""
    if a.ndim == 1 and b.ndim == 1:
        return sum_(mul(a, b))
    if a.ndim == 1:
        return reshape(matmul(reshape(a, (1, -1)), b), b.shape[:-2] + (b.shape[-1],))
    if b.ndim == 1:
        return reshape(matmul(a, reshape(b, (-1, 1))), a.shape[:-1])

    def vjp_a(g: Tensor) -> Tensor:
        return _unbroadcast(matmul(g, _swap_last(b)), a.shape)

    def vjp_b(g: Tensor) -> Tensor:
        return _unbroadcast(matmul(_swap_last(a), g), b.shape)

    return _make(a.data @ b.data, (a, b), (vjp_a, vjp_b))


def _swap_last(a: Tensor) -> Tensor:
    axes = list(range(a.ndim))
    axes[-1], axes[-2] = axes[-2], axes[-1]
    return transpose(a, axes)


# ----------------------------------------------------------------------
# Shape ops
# ----------------------------------------------------------------------

def reshape(a: Tensor, shape) -> Tensor:
    shape = tuple(shape)
    old_shape = a.shape
    return _make(a.data.reshape(shape), (a,), (lambda g: reshape(g, old_shape),))


def broadcast_to(a: Tensor, shape) -> Tensor:
    """Broadcast ``a`` to ``shape`` without materialising a copy.

    The forward value is a numpy broadcast view; the VJP sums the
    incoming gradient back down to the original shape.  Reduction VJPs
    use this instead of multiplying by a ones tensor, which kept the old
    tape allocating (and multiplying through) a full-size constant on
    every backward pass.
    """
    shape = tuple(shape)
    in_shape = a.shape
    return _make(
        np.broadcast_to(a.data, shape),
        (a,),
        (lambda g: _unbroadcast(g, in_shape),),
    )


def transpose(a: Tensor, axes: Sequence[int] | None = None) -> Tensor:
    if axes is None:
        axes = tuple(reversed(range(a.ndim)))
    axes = tuple(axes)
    inverse = tuple(np.argsort(axes))
    return _make(np.transpose(a.data, axes), (a,), (lambda g: transpose(g, inverse),))


def concatenate(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    tensors = [_ensure_tensor(t) for t in tensors]
    sizes = [t.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def make_vjp(i: int):
        def vjp(g: Tensor) -> Tensor:
            index = [slice(None)] * g.ndim
            index[axis] = slice(int(offsets[i]), int(offsets[i + 1]))
            return getitem(g, tuple(index))

        return vjp

    return _make(
        np.concatenate([t.data for t in tensors], axis=axis),
        tensors,
        tuple(make_vjp(i) for i in range(len(tensors))),
    )


def stack(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    tensors = [_ensure_tensor(t) for t in tensors]

    def make_vjp(i: int):
        def vjp(g: Tensor) -> Tensor:
            index = [slice(None)] * g.ndim
            index[axis] = i
            return getitem(g, tuple(index))

        return vjp

    return _make(
        np.stack([t.data for t in tensors], axis=axis),
        tensors,
        tuple(make_vjp(i) for i in range(len(tensors))),
    )


def getitem(a: Tensor, index) -> Tensor:
    """Differentiable indexing (basic and integer-array indexing)."""
    out_data = a.data[index]
    shape = a.shape

    def vjp(g: Tensor) -> Tensor:
        return scatter_to(shape, index, g)

    return _make(np.array(out_data, copy=True), (a,), (vjp,))


def _is_basic_index(index) -> bool:
    """True for indices made only of ints/slices/None/Ellipsis.

    Basic indexing addresses every element at most once, so the scatter
    adjoint can use direct assignment instead of ``np.add.at`` (whose
    fixed per-call overhead dominates on the small arrays the RNN step
    loop scatters into)."""
    items = index if isinstance(index, tuple) else (index,)
    return all(
        isinstance(i, (int, np.integer, slice)) or i is None or i is Ellipsis
        for i in items
    )


def scatter_to(shape: tuple[int, ...], index, values: Tensor) -> Tensor:
    """Place ``values`` into a zero tensor of ``shape`` at ``index``.

    This is the adjoint of :func:`getitem`; duplicate integer indices
    accumulate, matching ``np.add.at`` semantics.
    """
    values = _ensure_tensor(values)
    basic = _is_basic_index(index)

    def forward(vals: np.ndarray) -> np.ndarray:
        base = np.zeros(shape, dtype=vals.dtype)
        if basic:
            base[index] = vals
        else:
            np.add.at(base, index, vals)
        return base

    def vjp(g: Tensor) -> Tensor:
        return getitem(g, index)

    return _make(forward(values.data), (values,), (vjp,))


def scatter_add(base: Tensor, index, values: Tensor) -> Tensor:
    """Return ``base`` with ``values`` accumulated at ``index``."""
    return add(base, scatter_to(base.shape, index, values))


def pad(a: Tensor, pad_width) -> Tensor:
    """Zero-pad; ``pad_width`` follows ``np.pad`` conventions."""
    pad_width = tuple((int(lo), int(hi)) for lo, hi in pad_width)
    index = tuple(
        slice(lo, lo + dim) for (lo, _hi), dim in zip(pad_width, a.shape)
    )
    return _make(
        np.pad(a.data, pad_width),
        (a,),
        (lambda g: getitem(g, index),),
    )


# ----------------------------------------------------------------------
# Reductions
# ----------------------------------------------------------------------

def _normalize_axis(axis, ndim: int) -> tuple[int, ...]:
    if axis is None:
        return tuple(range(ndim))
    if isinstance(axis, int):
        axis = (axis,)
    return tuple(ax % ndim for ax in axis)


def sum_(a: Tensor, axis=None, keepdims: bool = False) -> Tensor:
    axes = _normalize_axis(axis, a.ndim)
    in_shape = a.shape

    def vjp(g: Tensor) -> Tensor:
        if not keepdims:
            expanded = list(g.shape)
            for ax in sorted(axes):
                expanded.insert(ax, 1)
            g = reshape(g, tuple(expanded))
        return broadcast_to(g, in_shape)

    return _make(a.data.sum(axis=axes or None, keepdims=keepdims), (a,), (vjp,))


def mean(a: Tensor, axis=None, keepdims: bool = False) -> Tensor:
    axes = _normalize_axis(axis, a.ndim)
    count = float(np.prod([a.shape[ax] for ax in axes])) if axes else 1.0
    return div(sum_(a, axis=axis, keepdims=keepdims), Tensor(np.array(count)))


def max_(a: Tensor, axis=None, keepdims: bool = False) -> Tensor:
    """Max reduction; ties split gradient equally (subgradient choice)."""
    axes = _normalize_axis(axis, a.ndim)
    reduced = a.data.max(axis=axes or None, keepdims=True)
    mask = (a.data == reduced).astype(DEFAULT_DTYPE)
    mask = mask / mask.sum(axis=axes or None, keepdims=True)
    out_data = reduced if keepdims else np.squeeze(reduced, axis=axes or None)

    def vjp(g: Tensor) -> Tensor:
        if not keepdims:
            expanded = list(g.shape)
            for ax in sorted(axes):
                expanded.insert(ax, 1)
            g = reshape(g, tuple(expanded))
        return mul(g, Tensor(mask))

    return _make(out_data, (a,), (vjp,))


# ----------------------------------------------------------------------
# Backpropagation engine
# ----------------------------------------------------------------------

def _topo_order(roots: Sequence[Tensor]) -> list[Tensor]:
    order: list[Tensor] = []
    seen: set[int] = set()
    stack: list[tuple[Tensor, bool]] = [(r, False) for r in roots]
    while stack:
        node, processed = stack.pop()
        if processed:
            order.append(node)
            continue
        if id(node) in seen:
            continue
        seen.add(id(node))
        stack.append((node, True))
        if node._node is not None:
            for parent in node._node.parents:
                if parent.requires_grad and id(parent) not in seen:
                    stack.append((parent, False))
    return order


def _collect_leaves(root: Tensor) -> list[Tensor]:
    leaves = []
    for t in _topo_order([root]):
        if t._node is None and t.requires_grad:
            leaves.append(t)
    return leaves


def _backprop(
    outputs: Sequence[Tensor],
    grad_outputs: Sequence[Tensor],
    inputs: Sequence[Tensor],
    create_graph: bool,
    order: list[Tensor] | None = None,
) -> list[Tensor | None]:
    grads: dict[int, Tensor] = {}
    for out, g in zip(outputs, grad_outputs):
        if id(out) in grads:
            grads[id(out)] = grads[id(out)] + g
        else:
            grads[id(out)] = g

    # ``order`` lets callers that already walked the graph (backward()'s
    # leaf collection) hand the topological order in instead of paying a
    # second traversal.
    if order is None:
        order = _topo_order(list(outputs))
    if _tape_profiler is not None:
        _tape_profiler._record_backward(len(order))
    needed = {id(t) for t in inputs}
    # Mark every ancestor of an input so we do not waste VJPs elsewhere.
    reachable: set[int] = set()
    for t in order:
        if id(t) in needed:
            reachable.add(id(t))
    # Propagate reachability up the order: a node is relevant if it is an
    # input or any of its parents (transitively) is.  We instead compute
    # "leads-to-input" by a reverse sweep over the topological order.
    leads: set[int] = set(needed)
    for t in order:  # order is parents-before-children
        if t._node is None:
            continue
        if any(id(p) in leads for p in t._node.parents):
            leads.add(id(t))

    results: dict[int, Tensor] = {}
    ctx = enable_grad() if create_graph else no_grad()
    with ctx:
        for t in reversed(order):
            if id(t) not in grads:
                continue
            if id(t) in needed:
                # Capture now: an input may be an intermediate node whose
                # accumulated gradient is complete once we reach it in
                # reverse topological order.
                results[id(t)] = grads[id(t)]
            if t._node is None or id(t) not in leads:
                grads.pop(id(t))
                continue
            g = grads.pop(id(t))
            for parent, vjp in zip(t._node.parents, t._node.vjps):
                if vjp is None or not parent.requires_grad or id(parent) not in leads:
                    continue
                contrib = vjp(g)
                if contrib is None:
                    continue
                if id(parent) in grads:
                    grads[id(parent)] = grads[id(parent)] + contrib
                else:
                    grads[id(parent)] = contrib
    return [results.get(id(t)) for t in inputs]


def grad(
    outputs: Tensor | Sequence[Tensor],
    inputs: Sequence[Tensor],
    grad_outputs: Tensor | Sequence[Tensor] | None = None,
    create_graph: bool = False,
    allow_unused: bool = False,
) -> list[Tensor | None]:
    """Compute gradients of ``outputs`` w.r.t. ``inputs``.

    With ``create_graph=True`` the returned gradients are connected to the
    graph and may themselves be differentiated (second-order optimisation).
    """
    if isinstance(outputs, Tensor):
        outputs = [outputs]
    if grad_outputs is None:
        grad_outputs = [Tensor(np.ones_like(o.data)) for o in outputs]
    elif isinstance(grad_outputs, Tensor):
        grad_outputs = [grad_outputs]
    result = _backprop(list(outputs), list(grad_outputs), list(inputs), create_graph)
    if not allow_unused:
        for inp, g in zip(inputs, result):
            if g is None and inp.requires_grad:
                raise RuntimeError(
                    "One of the inputs was not used in the graph; pass "
                    "allow_unused=True to receive None for it."
                )
    return result
