"""Tape profiler: per-backward node counts and live ndarray bytes.

PR 3 pinned the recurrent cells to <= 24 tape nodes per step with a
comment and a growth test.  :func:`profile_tape` turns that invariant
into a queryable metric: while active, every graph node created by
``repro.autodiff`` is counted (by op kind, via the caller's function
name), every backward traversal records how many nodes it walked, and
``weakref`` finalizers track the peak number of ndarray bytes held live
by graph-producing tensors.

Zero overhead when inactive: the autodiff hot path pays one module
global load and an ``is None`` check (see ``tensor._make``).
"""

from __future__ import annotations

import contextlib
import importlib
import sys
import weakref

# ``repro.autodiff`` re-exports a ``tensor()`` factory function that
# shadows the submodule attribute, so resolve the module explicitly.
_tensor = importlib.import_module("repro.autodiff.tensor")

#: Op names under which the fused recurrent scans register their single
#: tape node (``_make`` is called directly from these functions, so the
#: caller-frame op key is the kernel name itself).
_RNN_KERNEL_OPS = ("gru_forward_batch", "lstm_forward_batch")


class TapeProfile:
    """Mutable accumulator filled in while :func:`profile_tape` is active."""

    def __init__(self):
        self.op_counts: dict[str, int] = {}
        self.nodes_created = 0
        self.backwards = 0
        self.backward_nodes: list[int] = []
        self.live_bytes = 0
        self.peak_live_bytes = 0

    # -- hooks called from repro.autodiff.tensor -----------------------
    def _record(self, out) -> None:
        # Frames: 0=_record, 1=_make, 2=the primitive op (add, exp, ...).
        op = sys._getframe(2).f_code.co_name
        self.op_counts[op] = self.op_counts.get(op, 0) + 1
        self.nodes_created += 1
        nbytes = int(out.data.nbytes)
        self.live_bytes += nbytes
        if self.live_bytes > self.peak_live_bytes:
            self.peak_live_bytes = self.live_bytes
        weakref.finalize(out, self._release, nbytes)

    def _release(self, nbytes: int) -> None:
        self.live_bytes -= nbytes

    def _record_backward(self, n_nodes: int) -> None:
        self.backwards += 1
        self.backward_nodes.append(n_nodes)

    # -- derived views -------------------------------------------------
    @property
    def max_nodes_per_backward(self) -> int:
        return max(self.backward_nodes) if self.backward_nodes else 0

    @property
    def mean_nodes_per_backward(self) -> float:
        if not self.backward_nodes:
            return 0.0
        return sum(self.backward_nodes) / len(self.backward_nodes)

    @property
    def rnn_nodes(self) -> int:
        """Tape nodes created by the fused recurrent kernels.

        One per GRU/LSTM scan (two per bidirectional layer forward) —
        the queryable form of the one-node-per-sequence invariant, the
        fused analogue of the legacy ≤ 24 nodes/step budget.
        """
        return sum(self.op_counts.get(op, 0) for op in _RNN_KERNEL_OPS)

    def summary(self) -> dict:
        """JSON-ready digest (op counts in sorted order)."""
        return {
            "nodes_created": self.nodes_created,
            "backwards": self.backwards,
            "max_nodes_per_backward": self.max_nodes_per_backward,
            "mean_nodes_per_backward": round(self.mean_nodes_per_backward, 3),
            "peak_live_bytes": self.peak_live_bytes,
            "rnn_nodes": self.rnn_nodes,
            "op_counts": {k: self.op_counts[k] for k in sorted(self.op_counts)},
        }


@contextlib.contextmanager
def profile_tape():
    """Profile autodiff tape activity inside the block.

    Yields a :class:`TapeProfile`.  On exit the profiler is detached
    and, when a telemetry session is active, the headline numbers are
    published as gauges (``tape.max_nodes_per_backward``,
    ``tape.peak_live_bytes``, ``tape.rnn_nodes``) plus a ``tape`` event.
    """
    from repro import obs

    profile = TapeProfile()
    previous = _tensor._tape_profiler
    _tensor.set_tape_profiler(profile)
    try:
        yield profile
    finally:
        _tensor.set_tape_profiler(previous)
        if obs.enabled():
            obs.set_gauge("tape.max_nodes_per_backward",
                          profile.max_nodes_per_backward)
            obs.set_gauge("tape.peak_live_bytes", profile.peak_live_bytes)
            obs.set_gauge("tape.rnn_nodes", profile.rnn_nodes)
            obs.emit("tape", **profile.summary())
