"""Distributed request tracing and the per-process flight recorder.

One serving request crosses several processes: gateway admission,
priority queueing, routing, hedged retries, replica decode, delivery.
``repro.obs`` spans are thread-local and per-process, so on their own
they cannot answer "what happened to request X and where did its
latency go."  This module adds Dapper-style trace-context propagation
over the existing JSONL event streams:

* :class:`TraceContext` — a deterministic ``trace_id`` minted from the
  gateway seed and the request ticket (:func:`mint`).  No wall-clock,
  no ``os.urandom``: the same seeded run always produces byte-identical
  ids, so the chaos oracle can assert on whole traces.
* :func:`hop` — emit one per-hop span record (``trace.hop`` event) into
  whatever telemetry session is active *in the current process*.  A
  replica writes its hops into its own ``<path>.replica-<id>`` sibling
  stream; :func:`repro.obs.report.assemble_traces` stitches the sibling
  streams back into one cross-process timeline per trace.
* :class:`FlightRecorder` — a bounded in-memory ring of recent events
  that dumps to ``flight-<pid>.jsonl`` on incidents (breaker open,
  brownout escalation, replica crash/rebuild) so post-mortem forensics
  work even when full telemetry was off.

Hot-path discipline matches ``repro.obs``: every helper starts with a
single global load and an ``is None`` / early-return check, so the cost
with tracing disabled is a few nanoseconds per call site and stays
under the repo's <2% disabled-overhead gate.
"""

from __future__ import annotations

import hashlib
import json
import os
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass

from repro import obs
from repro.obs.events import SCHEMA_VERSION

#: Event name carried by every per-hop span record.
TRACE_EVENT = "trace.hop"

#: The hop taxonomy, in causal order.  ``HOP_ORDER`` is the assembler's
#: primary sort key — sibling streams have *independent* clocks (each
#: process measures ``t`` from its own session start), so stitching
#: must never compare ``t`` across files.
HOPS = ("admit", "route", "queue", "hedge", "dispatch",
        "decode", "evict", "shed", "expire", "respond")
HOP_ORDER = {name: index for index, name in enumerate(HOPS)}

#: Hops that end a request's life: delivered, dropped, or timed out.
TERMINAL_HOPS = frozenset({"respond", "shed", "expire"})


def mint(seed: int, ticket: int) -> str:
    """Deterministic 16-hex trace id from the run seed and ticket."""
    digest = hashlib.sha256(f"{int(seed)}:{int(ticket)}".encode("ascii"))
    return digest.hexdigest()[:16]


@dataclass(frozen=True)
class TraceContext:
    """Identity of one request's trace, minted at gateway admission."""

    trace_id: str
    span_id: str

    @classmethod
    def for_request(cls, seed: int, ticket: int) -> "TraceContext":
        trace_id = mint(seed, ticket)
        return cls(trace_id=trace_id, span_id=span_for(trace_id, "admit"))

    def child(self, hop_name: str, qualifier: str = "") -> "TraceContext":
        return TraceContext(
            trace_id=self.trace_id,
            span_id=span_for(self.trace_id, hop_name, qualifier),
        )


def span_for(trace_id: str, hop_name: str, qualifier: str = "") -> str:
    """Deterministic 8-hex span id for one hop of one trace."""
    digest = hashlib.sha256(
        f"{trace_id}/{hop_name}/{qualifier}".encode("ascii", "replace")
    )
    return digest.hexdigest()[:8]


# ----------------------------------------------------------------------
# The process-wide tracing switch.
#
# Only the *gateway* consults this switch (to decide whether to mint a
# context at admission).  Replicas and services never read it: they
# emit hops whenever a non-None trace id arrives over the pipe, so a
# forked replica that inherited a stale copy of the global still does
# the right thing.

_TRACING = False


def tracing_enabled() -> bool:
    return _TRACING


@contextmanager
def request_tracing():
    """Enable trace-context minting at gateway admission for the block."""
    global _TRACING
    previous = _TRACING
    _TRACING = True
    try:
        yield
    finally:
        _TRACING = previous


def hop(trace, hop_name: str, **fields) -> None:
    """Record one hop of a request's journey.

    ``trace`` is a :class:`TraceContext`, a bare trace-id string (the
    wire form replicas receive), or ``None`` — in which case this is a
    no-op, which is the fast path the disabled-overhead gate measures.

    The record goes to the active telemetry session (if any) *and* to
    the flight-recorder ring (if one is installed); either can be off
    independently, which is what makes post-incident forensics work
    with full telemetry disabled.
    """
    if trace is None:
        return
    trace_id = trace.trace_id if isinstance(trace, TraceContext) else str(trace)
    qualifier = fields.get("replica")
    span_id = span_for(trace_id, hop_name,
                       "" if qualifier is None else str(qualifier))
    recorder = _FLIGHT
    if recorder is not None:
        recorder.record({"name": TRACE_EVENT, "trace": trace_id,
                         "span": span_id, "hop": hop_name, **fields})
    obs.emit(TRACE_EVENT, trace=trace_id, span=span_id, hop=hop_name, **fields)


def wire_id(trace) -> str | None:
    """The pickle-safe form of a trace for the replica pipe protocol."""
    if trace is None:
        return None
    return trace.trace_id if isinstance(trace, TraceContext) else str(trace)


# ----------------------------------------------------------------------
# Flight recorder


class FlightRecorder:
    """Bounded ring of recent events, dumped to disk on incidents.

    The ring lives purely in memory until :meth:`dump` — recording is a
    deque append, cheap enough to leave on in production.  Each process
    dumps to its own ``flight-<pid>.jsonl`` (a forked replica inherits
    the recorder object but writes under its own pid), appending one
    header record per incident followed by the ring contents.  The ring
    is cleared after a dump so consecutive incidents don't re-dump the
    same history.
    """

    def __init__(self, directory: str, capacity: int = 256,
                 brownout_level: int = 2):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.directory = str(directory)
        self.capacity = int(capacity)
        #: brownout pressure at/above which an escalation dumps the ring.
        self.brownout_level = int(brownout_level)
        self._ring: deque = deque(maxlen=self.capacity)
        self._seq = 0
        self.dumps = 0

    def record(self, entry: dict) -> None:
        self._seq += 1
        self._ring.append({"seq": self._seq, **entry})

    def path(self) -> str:
        return os.path.join(self.directory, f"flight-{os.getpid()}.jsonl")

    def dump(self, reason: str, fields: dict | None = None) -> str:
        os.makedirs(self.directory, exist_ok=True)
        path = self.path()
        header = {
            "kind": "flight",
            "schema_version": SCHEMA_VERSION,
            "reason": reason,
            "pid": os.getpid(),
            "dump": self.dumps,
            "events": len(self._ring),
        }
        if fields:
            header.update(fields)
        with open(path, "a", encoding="utf-8") as fh:
            fh.write(json.dumps(header, sort_keys=True) + "\n")
            for entry in self._ring:
                fh.write(json.dumps({"kind": "event", **entry},
                                    sort_keys=True) + "\n")
            fh.flush()
        self.dumps += 1
        self._ring.clear()
        return path


_FLIGHT: FlightRecorder | None = None


def flight_active() -> FlightRecorder | None:
    return _FLIGHT


@contextmanager
def flight_recorder(directory: str, capacity: int = 256,
                    brownout_level: int = 2):
    """Install a process-wide flight recorder for the block."""
    global _FLIGHT
    previous = _FLIGHT
    recorder = FlightRecorder(directory, capacity=capacity,
                              brownout_level=brownout_level)
    _FLIGHT = recorder
    try:
        yield recorder
    finally:
        _FLIGHT = previous


def record(name: str, **fields) -> None:
    """Feed one event into the flight ring (no-op without a recorder).

    This is the sessionless sibling of :func:`repro.obs.emit` — it
    works with telemetry fully off, which is the whole point of the
    flight recorder.
    """
    recorder = _FLIGHT
    if recorder is None:
        return
    recorder.record({"name": name, **fields})


def incident(reason: str, **fields) -> str | None:
    """Record an incident and dump the ring; returns the dump path.

    Called at breaker-open, brownout escalation past the recorder's
    configured level, replica crash, and SIGKILL-survivor rebuild.
    """
    recorder = _FLIGHT
    if recorder is None:
        return None
    recorder.record({"name": f"incident.{reason}", **fields})
    dumped = len(recorder._ring)
    path = recorder.dump(reason, fields)
    obs.emit("flight.dump", reason=reason, path=path, events=dumped, **fields)
    return path
