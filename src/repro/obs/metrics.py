"""Deterministic metrics primitives: counters, gauges, histograms.

A :class:`MetricsRegistry` is a named collection of instruments.  There
is one process-wide :data:`DEFAULT_REGISTRY` (used when no telemetry
session is active), each :class:`~repro.obs.Telemetry` session owns its
own registry, and components that want isolated accounting (e.g. one
:class:`~repro.serving.TaggingService` instance among several) create
per-component instances.

Everything here is deterministic by construction:

* counters and gauges hold exact Python numbers, never sampled;
* histograms use *fixed* bucket boundaries chosen at creation time, so
  two runs observing the same values produce identical bucket counts —
  there is no adaptive resizing to make snapshots run-order dependent;
* :meth:`MetricsRegistry.snapshot` emits keys in sorted order, so the
  JSONL representation of the same measurements is byte-identical.
"""

from __future__ import annotations

from bisect import bisect_left

#: Default latency buckets in milliseconds (sub-ms to 10 s, roughly
#: 1-2.5-5 per decade) — shared by the serving histograms so queue-wait
#: and decode latency are directly comparable.
LATENCY_MS_BUCKETS = (
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0,
    100.0, 250.0, 500.0, 1000.0, 2500.0, 5000.0, 10000.0,
)


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, n: int | float = 1) -> None:
        if n < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease by {n}")
        self.value += n

    def __repr__(self) -> str:
        return f"Counter({self.name}={self.value})"


class Gauge:
    """A point-in-time value (queue depth, cache size, LR)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def __repr__(self) -> str:
        return f"Gauge({self.name}={self.value})"


class Histogram:
    """Fixed-bucket histogram with deterministic bucket assignment.

    ``buckets`` are the *upper* bounds (inclusive) of each bucket; one
    implicit overflow bucket catches everything beyond the last bound.
    An observation lands in the first bucket whose bound is ``>=`` the
    value, via :func:`bisect.bisect_left` — exact boundary values always
    land in the bounded bucket, never the next one, on every platform.

    Observations may carry a ``trace_id`` **exemplar**: the histogram
    remembers, per bucket, the trace that produced the largest value
    seen in that bucket, so a report can link "p99 = 48 ms" to a
    concrete request trace.  Exemplars never change counts or sums.
    """

    __slots__ = ("name", "buckets", "counts", "count", "total", "exemplars")

    def __init__(self, name: str, buckets: tuple[float, ...] = LATENCY_MS_BUCKETS):
        if not buckets:
            raise ValueError("histogram needs at least one bucket bound")
        bounds = tuple(float(b) for b in buckets)
        if list(bounds) != sorted(set(bounds)):
            raise ValueError(f"bucket bounds must be strictly increasing: {bounds}")
        self.name = name
        self.buckets = bounds
        self.counts = [0] * (len(bounds) + 1)
        self.count = 0
        self.total = 0.0
        #: bucket index -> (value, trace_id) of the bucket-max sample.
        self.exemplars: dict[int, tuple[float, str]] = {}

    def observe(self, value: float, trace_id: str | None = None) -> None:
        value = float(value)
        index = bisect_left(self.buckets, value)
        self.counts[index] += 1
        self.count += 1
        self.total += value
        if trace_id is not None:
            current = self.exemplars.get(index)
            if current is None or value >= current[0]:
                self.exemplars[index] = (value, trace_id)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def snapshot(self) -> dict:
        snap = {
            "buckets": list(self.buckets),
            "counts": list(self.counts),
            "count": self.count,
            "sum": round(self.total, 6),
        }
        if self.exemplars:
            snap["exemplars"] = {
                str(index): {"value": round(value, 6), "trace": trace}
                for index, (value, trace) in sorted(self.exemplars.items())
            }
        return snap

    def __repr__(self) -> str:
        return f"Histogram({self.name}, n={self.count})"


class MetricsRegistry:
    """A named set of counters, gauges and histograms.

    Instruments are created on first use and shared on later lookups;
    asking for an existing histogram with *different* buckets is an
    error (silently changing buckets would corrupt determinism).
    """

    def __init__(self):
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[name] = Gauge(name)
        return instrument

    def histogram(self, name: str,
                  buckets: tuple[float, ...] | None = None) -> Histogram:
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = self._histograms[name] = Histogram(
                name, buckets if buckets is not None else LATENCY_MS_BUCKETS
            )
        elif buckets is not None and tuple(buckets) != instrument.buckets:
            raise ValueError(
                f"histogram {name!r} already exists with buckets "
                f"{instrument.buckets}, requested {tuple(buckets)}"
            )
        return instrument

    def existing_histogram(self, name: str) -> Histogram | None:
        """Look up a histogram without creating it (for read-only stats)."""
        return self._histograms.get(name)

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """JSON-ready digest with deterministically ordered keys."""
        return {
            "counters": {n: self._counters[n].value
                         for n in sorted(self._counters)},
            "gauges": {n: self._gauges[n].value
                       for n in sorted(self._gauges)},
            "histograms": {n: self._histograms[n].snapshot()
                           for n in sorted(self._histograms)},
        }


def histogram_quantile(hist: Histogram, q: float) -> float:
    """Upper-bound quantile from fixed bucket counts (Prometheus-style).

    Returns the smallest bucket upper bound covering fraction ``q`` of
    observations; observations past the last bound report ``inf`` (the
    histogram cannot see above its top bucket).  Zero observations
    report 0.0.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"q must be in [0, 1], got {q}")
    if hist.count == 0:
        return 0.0
    target = q * hist.count
    cumulative = 0
    for bound, count in zip(hist.buckets, hist.counts):
        cumulative += count
        if cumulative >= target:
            return bound
    return float("inf")  # lives in the overflow bucket


#: Process-wide fallback registry for direct (sessionless) use.
DEFAULT_REGISTRY = MetricsRegistry()
