"""Event sinks and the single human-readable formatting path.

Two sinks implement the same tiny protocol (``write(record)``,
``close()``):

* :class:`JsonlSink` — appends one JSON object per line, flushing each
  write so a crashed run still leaves a readable (at worst torn-tail)
  stream.  Fork-safe: a child process inheriting the sink silently
  drops writes instead of interleaving bytes with the parent.
* :class:`BufferSink` — keeps records in a list; used by tests and the
  overhead bench.

:func:`render_event` is the *one* place structured records become
human-readable lines.  The CLI's self-healing output, ``repro obs
report`` and journal note rendering all call it, so wording never
drifts between the stderr path and the report path.
"""

from __future__ import annotations

import json
import os


class JsonlSink:
    """Append-only JSONL event stream with per-record flush."""

    def __init__(self, path: str):
        self.path = str(path)
        self._pid = os.getpid()
        directory = os.path.dirname(self.path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        self._fh = open(self.path, "a", encoding="utf-8")

    def write(self, record: dict) -> None:
        if os.getpid() != self._pid:
            return  # forked child: parent owns the file handle
        self._fh.write(json.dumps(record, sort_keys=True) + "\n")
        self._fh.flush()

    def close(self) -> None:
        if os.getpid() == self._pid and not self._fh.closed:
            self._fh.close()


class BufferSink:
    """In-memory sink for tests and overhead measurement."""

    def __init__(self):
        self.records: list[dict] = []

    def write(self, record: dict) -> None:
        self.records.append(record)

    def close(self) -> None:
        pass


def render_event(record: dict) -> str:
    """Format one structured record as a human-readable line.

    Unknown kinds/names fall back to a compact key=value dump so new
    event types are never invisible.
    """
    kind = record.get("kind", "event")
    name = record.get("name", "")
    if kind == "span":
        status = "" if record.get("status") == "ok" else f" [{record.get('error', 'error')}]"
        return (f"span {record.get('name')}: {record.get('dur_s', 0.0) * 1000.0:.3f} ms"
                f" (depth {record.get('depth', 0)}){status}")
    if name == "execution":
        def n(key):  # summaries carry index lists, counters carry ints
            value = record.get(key, 0)
            return len(value) if isinstance(value, (list, tuple)) else value

        where = "/".join(
            str(record[k]) for k in ("method", "setting") if k in record
        ) or "?"
        if "k_shot" in record:
            where += f"/{record['k_shot']}-shot"
        return (f"self-healing: {where} — retried {n('retried')}, "
                f"quarantined {n('quarantined')}, errors {n('errors')}, "
                f"pool restarts {n('pool_restarts')}, "
                f"refunds {n('refunds')}")
    if name == "breaker":
        return (f"breaker: {record.get('old', '?')} -> {record.get('new', '?')}"
                f" (failures {record.get('failures', 0)}, trips {record.get('trips', 0)})")
    if name and name.startswith("checkpoint."):
        action = name.split(".", 1)[1]
        return f"checkpoint {action}: {record.get('path', '?')}"
    if name == "guard.anomaly":
        actions = ",".join(record.get("actions", ())) or "none"
        return (f"guard anomaly at iteration {record.get('iteration', '?')}: "
                f"{record.get('reason', '?')} -> {actions}")
    if name == "episode":
        return (f"episode {record.get('index', '?')}: {record.get('outcome', '?')}"
                f" (attempts {record.get('attempts', 1)})")
    skip = {"kind", "name", "t"}
    body = " ".join(f"{k}={record[k]}" for k in sorted(record) if k not in skip)
    label = name or kind
    return f"{label}: {body}" if body else str(label)
