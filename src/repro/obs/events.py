"""Event sinks and the single human-readable formatting path.

Two sinks implement the same tiny protocol (``write(record)``,
``close()``):

* :class:`JsonlSink` — appends one JSON object per line, flushing each
  write so a crashed run still leaves a readable (at worst torn-tail)
  stream.  Fork-safe in two modes: ``on_fork="drop"`` (default) makes a
  child process inheriting the sink silently drop writes instead of
  interleaving bytes with the parent; ``on_fork="split"`` makes the
  child transparently reopen its *own* sibling file
  (``<path>.fork-<pid>``) on first write — nothing is lost, nothing is
  interleaved, and :func:`sibling_paths` + ``repro obs report`` merge
  the siblings back into one fleet-wide report.
* :class:`BufferSink` — keeps records in a list; used by tests and the
  overhead bench.

:func:`render_event` is the *one* place structured records become
human-readable lines.  The CLI's self-healing output, ``repro obs
report`` and journal note rendering all call it, so wording never
drifts between the stderr path and the report path.
"""

from __future__ import annotations

import glob
import json
import os

#: Version of the telemetry JSONL schema, stamped into every session
#: header record.  Major bumps mean "old readers must refuse" (record
#: shapes changed incompatibly); minor bumps are additive.  Readers
#: treat a missing ``schema_version`` as 1.0 (pre-versioning streams).
SCHEMA_VERSION = "1.0"

#: Highest major version this build knows how to read.
SCHEMA_MAJOR = 1


class JsonlSink:
    """Append-only JSONL event stream with per-record flush.

    ``on_fork`` picks the behaviour when a forked child writes through
    an inherited sink: ``"drop"`` (historical default) silently drops
    the record — the parent owns the file handle; ``"split"`` lazily
    reopens a per-child sibling file ``<path>.fork-<pid>`` so fleet
    worker events survive without ever sharing a file descriptor with
    the parent.
    """

    def __init__(self, path: str, on_fork: str = "drop"):
        if on_fork not in ("drop", "split"):
            raise ValueError(
                f"on_fork must be 'drop' or 'split', got {on_fork!r}"
            )
        self.path = str(path)
        self.on_fork = on_fork
        self._pid = os.getpid()
        directory = os.path.dirname(self.path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        self._fh = open(self.path, "a", encoding="utf-8")

    def _split_for_fork(self) -> None:
        """First write after a fork (split mode): take over a sibling.

        The inherited handle is *abandoned*, never closed — closing
        would flush/close the parent's descriptor state from the child.
        """
        pid = os.getpid()
        self.path = f"{self.path}.fork-{pid}"
        self._fh = open(self.path, "a", encoding="utf-8")
        self._pid = pid

    def write(self, record: dict) -> None:
        if os.getpid() != self._pid:
            if self.on_fork == "drop":
                return  # forked child: parent owns the file handle
            self._split_for_fork()
        self._fh.write(json.dumps(record, sort_keys=True) + "\n")
        self._fh.flush()

    def close(self) -> None:
        if os.getpid() == self._pid and not self._fh.closed:
            self._fh.close()


def sibling_paths(path: str) -> list[str]:
    """Event files belonging to one fleet run, main stream first.

    Siblings are the per-replica streams gateway workers open
    (``<path>.replica-<id>``) and the per-child streams a split-mode
    sink creates (``<path>.fork-<pid>``), including nested combinations
    (a fork under a replica).  Sorted for deterministic merge order.
    """
    out = [path] if os.path.exists(path) else []
    seen = set(out)
    frontier = [path]
    while frontier:
        base = frontier.pop()
        found = sorted(
            glob.glob(glob.escape(base) + ".replica-*")
            + glob.glob(glob.escape(base) + ".fork-*")
        )
        for p in found:
            if p not in seen and os.path.isfile(p):
                seen.add(p)
                out.append(p)
                frontier.append(p)
    return out


class BufferSink:
    """In-memory sink for tests and overhead measurement."""

    def __init__(self):
        self.records: list[dict] = []

    def write(self, record: dict) -> None:
        self.records.append(record)

    def close(self) -> None:
        pass


def render_event(record: dict) -> str:
    """Format one structured record as a human-readable line.

    Unknown kinds/names fall back to a compact key=value dump so new
    event types are never invisible, and **no record can raise**: a
    malformed record (wrong field types, non-dict, exotic values) falls
    back to a compact repr-style line instead of killing the report.
    """
    try:
        return _render_event(record)
    except Exception:
        try:
            return f"unrenderable record: {record!r:.300}"
        except Exception:
            return "unrenderable record"


def _render_event(record: dict) -> str:
    kind = record.get("kind", "event")
    name = record.get("name", "")
    if kind == "span":
        status = "" if record.get("status") == "ok" else f" [{record.get('error', 'error')}]"
        return (f"span {record.get('name')}: {record.get('dur_s', 0.0) * 1000.0:.3f} ms"
                f" (depth {record.get('depth', 0)}){status}")
    if name == "execution":
        def n(key):  # summaries carry index lists, counters carry ints
            value = record.get(key, 0)
            return len(value) if isinstance(value, (list, tuple)) else value

        where = "/".join(
            str(record[k]) for k in ("method", "setting") if k in record
        ) or "?"
        if "k_shot" in record:
            where += f"/{record['k_shot']}-shot"
        return (f"self-healing: {where} — retried {n('retried')}, "
                f"quarantined {n('quarantined')}, errors {n('errors')}, "
                f"pool restarts {n('pool_restarts')}, "
                f"refunds {n('refunds')}")
    if name == "breaker":
        return (f"breaker: {record.get('old', '?')} -> {record.get('new', '?')}"
                f" (failures {record.get('failures', 0)}, trips {record.get('trips', 0)})")
    if name == "gateway.breaker":
        return (f"gateway breaker[{record.get('replica', '?')}]: "
                f"{record.get('old', '?')} -> {record.get('new', '?')}")
    if name == "gateway.replica_down":
        return (f"gateway replica {record.get('replica', '?')} down "
                f"({record.get('kind', '?')}): "
                f"{record.get('inflight', 0)} in-flight refunded, "
                f"{record.get('queued', 0)} queued rerouted")
    if name == "gateway.replica_rebuilt":
        return (f"gateway replica {record.get('replica', '?')} rebuilt "
                f"(generation {record.get('generation', '?')})")
    if name == "gateway.replica_draining":
        return f"gateway replica {record.get('replica', '?')} draining for reload"
    if name == "gateway.replica_reloaded":
        return (f"gateway replica {record.get('replica', '?')} reloaded "
                f"(generation {record.get('generation', '?')})")
    if name == "gateway.hedge":
        return (f"gateway hedge: ticket {record.get('ticket', '?')} "
                f"replica {record.get('primary', '?')} -> "
                f"{record.get('hedge', '?')}")
    if name and name.startswith("checkpoint."):
        action = name.split(".", 1)[1]
        return f"checkpoint {action}: {record.get('path', '?')}"
    if name == "guard.anomaly":
        actions = ",".join(record.get("actions", ())) or "none"
        return (f"guard anomaly at iteration {record.get('iteration', '?')}: "
                f"{record.get('reason', '?')} -> {actions}")
    if name == "episode":
        return (f"episode {record.get('index', '?')}: {record.get('outcome', '?')}"
                f" (attempts {record.get('attempts', 1)})")
    if name == "trace.hop":
        extras = " ".join(
            f"{key}={record[key]}" for key in sorted(record)
            if key not in ("kind", "name", "t", "trace", "span", "hop")
        )
        line = (f"trace {record.get('trace', '?')} "
                f"{record.get('hop', '?')}")
        return f"{line} {extras}" if extras else line
    if name == "flight.dump":
        return (f"flight recorder dumped to {record.get('path', '?')} "
                f"({record.get('reason', '?')}, "
                f"{record.get('events', 0)} events)")
    skip = {"kind", "name", "t"}
    body = " ".join(f"{k}={record[k]}" for k in sorted(record) if k not in skip)
    label = name or kind
    return f"{label}: {body}" if body else str(label)
