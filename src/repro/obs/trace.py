"""Thread-local tracing spans with monotonic wall-time.

``Tracer.span(name, attrs)`` is a context manager.  Spans nest through a
per-thread stack, so concurrently tracing threads never corrupt each
other's parent/depth bookkeeping.  Each span emits exactly one record
when it *closes* (children therefore appear before their parents in the
JSONL stream — a post-order traversal of the span tree):

    {"kind": "span", "name": ..., "depth": ..., "parent": ...,
     "t_start": ..., "dur_s": ..., "status": "ok"|"error", ...}

The clock is injectable for deterministic tests; the default is
:func:`time.perf_counter` (monotonic).  Exceptions unwind the stack
correctly: the span is closed with ``status="error"`` and the exception
propagates unchanged.
"""

from __future__ import annotations

import threading
import time


class Tracer:
    """Produces nested span records through an injectable clock."""

    def __init__(self, emit, clock=time.perf_counter, t0: float | None = None):
        self._emit = emit
        self._clock = clock
        self._t0 = clock() if t0 is None else t0
        self._local = threading.local()

    def _stack(self) -> list[str]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    @property
    def depth(self) -> int:
        return len(self._stack())

    def span(self, name: str, attrs: dict | None = None) -> "_Span":
        return _Span(self, name, attrs or {})


class _Span:
    """A single span; created by :meth:`Tracer.span`."""

    __slots__ = ("_tracer", "name", "attrs", "_start", "_parent", "_depth")

    def __init__(self, tracer: Tracer, name: str, attrs: dict):
        self._tracer = tracer
        self.name = name
        self.attrs = attrs

    def __enter__(self) -> "_Span":
        stack = self._tracer._stack()
        self._parent = stack[-1] if stack else None
        self._depth = len(stack)
        stack.append(self.name)
        self._start = self._tracer._clock()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        end = self._tracer._clock()
        stack = self._tracer._stack()
        # Unwind to this span even if an inner span leaked (defensive:
        # a generator-held span collected late must not poison parents).
        while stack and stack[-1] != self.name:
            stack.pop()
        if stack:
            stack.pop()
        record = {
            "kind": "span",
            "name": self.name,
            "depth": self._depth,
            "parent": self._parent,
            "t_start": round(self._start - self._tracer._t0, 9),
            "dur_s": round(end - self._start, 9),
            "status": "error" if exc_type is not None else "ok",
        }
        if exc_type is not None:
            record["error"] = exc_type.__name__
        if self.attrs:
            record["attrs"] = self.attrs
        self._tracer._emit(record)
        return False  # never swallow exceptions
