"""Zero-dependency telemetry: tracing spans, metrics, events, profiling.

One :class:`Telemetry` session may be active per process at a time
(installed by :func:`telemetry_session`, usually via the CLI's
``--telemetry <path>`` flag).  The module-level helpers — :func:`span`,
:func:`count`, :func:`set_gauge`, :func:`observe`, :func:`emit` — are
sprinkled through the hot paths of the codebase; when no session is
active each costs a single global load + ``is None`` check and does
nothing, which the ``telemetry_overhead`` bench workload keeps under 2%
on episode evaluation.

Fork safety: a session records its owning pid.  Worker processes forked
by :class:`~repro.perf.executor.EpisodeExecutor` inherit the module
global but every helper no-ops in them, so per-episode telemetry always
comes from the supervisor side and the event stream is identical for
any worker count (see :func:`suspended`).

Sub-modules: :mod:`~repro.obs.trace` (span tree), :mod:`~repro.obs.metrics`
(counters/gauges/fixed-bucket histograms), :mod:`~repro.obs.events`
(JSONL sink + the one human-readable formatter), :mod:`~repro.obs.tapeprof`
(autodiff tape/memory profiler), :mod:`~repro.obs.timing` (median+IQR
measurement shared with the bench), :mod:`~repro.obs.report`
(aggregated run report behind ``repro obs report``).
"""

from __future__ import annotations

import contextlib
import os
import time

from repro.obs.events import (
    SCHEMA_VERSION,
    BufferSink,
    JsonlSink,
    render_event,
    sibling_paths,
)
from repro.obs.metrics import (
    DEFAULT_REGISTRY,
    LATENCY_MS_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.report import build_report, load_events, render_report
from repro.obs.tapeprof import TapeProfile, profile_tape
from repro.obs.timing import TimingStat, measure
from repro.obs.trace import Tracer

__all__ = [
    "Telemetry",
    "telemetry_session",
    "active",
    "enabled",
    "suspended",
    "span",
    "count",
    "set_gauge",
    "observe",
    "emit",
    "Tracer",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "DEFAULT_REGISTRY",
    "LATENCY_MS_BUCKETS",
    "JsonlSink",
    "BufferSink",
    "render_event",
    "sibling_paths",
    "SCHEMA_VERSION",
    "TapeProfile",
    "profile_tape",
    "TimingStat",
    "measure",
    "load_events",
    "build_report",
    "render_report",
]

_ACTIVE: "Telemetry | None" = None


class _NoopSpan:
    """Returned by :func:`span` when telemetry is off; reusable singleton."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NOOP = _NoopSpan()


class Telemetry:
    """One telemetry session: a tracer, a metrics registry, and a sink.

    ``path=None`` buffers records in memory (``session.sink.records``);
    a path appends JSONL.  ``clock`` must be monotonic and is shared by
    the tracer and every span, so injecting a fake clock makes span
    durations fully deterministic in tests.
    """

    def __init__(self, path: str | None = None, clock=time.perf_counter):
        from repro import __version__

        self.pid = os.getpid()
        self.clock = clock
        self.t0 = clock()
        self.registry = MetricsRegistry()
        self.sink = JsonlSink(path) if path else BufferSink()
        self.tracer = Tracer(self.sink.write, clock, t0=self.t0)
        self._suspended = 0
        self._closed = False
        self.sink.write({"kind": "session", "version": __version__,
                         "schema_version": SCHEMA_VERSION})

    def emit(self, name: str, **fields) -> None:
        record = {"kind": "event", "name": name,
                  "t": round(self.clock() - self.t0, 9)}
        record.update(fields)
        self.sink.write(record)

    def close(self) -> None:
        """Write the final metrics snapshot and release the sink."""
        if self._closed:
            return
        self._closed = True
        self.sink.write({"kind": "metrics", **self.registry.snapshot()})
        self.sink.close()


def active() -> "Telemetry | None":
    """The current session, or ``None``."""
    return _ACTIVE


def enabled() -> bool:
    """True when a session is active, owned by this process, not suspended."""
    t = _ACTIVE
    return t is not None and t.pid == os.getpid() and not t._suspended


@contextlib.contextmanager
def telemetry_session(path: str | None = None, clock=time.perf_counter):
    """Activate a :class:`Telemetry` session for the duration of the block."""
    global _ACTIVE
    previous = _ACTIVE
    session = Telemetry(path, clock=clock)
    _ACTIVE = session
    try:
        yield session
    finally:
        _ACTIVE = previous
        session.close()


@contextlib.contextmanager
def suspended():
    """Mute the active session inside the block (no-op when none).

    Used around work that must not record — e.g. the serial in-process
    leg of ``evaluate_method``'s parallel path, so the event stream is
    identical whether episodes run in-process or in forked workers.
    """
    t = _ACTIVE
    if t is None:
        yield
        return
    t._suspended += 1
    try:
        yield
    finally:
        t._suspended -= 1


# ----------------------------------------------------------------------
# Hot-path helpers: first check is a single global load + ``is None``.
# ----------------------------------------------------------------------

def span(name: str, **attrs):
    """Open a tracing span; a shared no-op when telemetry is off."""
    t = _ACTIVE
    if t is None:
        return _NOOP
    if t.pid != os.getpid() or t._suspended:
        return _NOOP
    return t.tracer.span(name, attrs)


def count(name: str, n: int | float = 1) -> None:
    """Increment counter ``name`` on the active session's registry."""
    t = _ACTIVE
    if t is None:
        return
    if t.pid != os.getpid() or t._suspended:
        return
    t.registry.counter(name).inc(n)


def set_gauge(name: str, value: float) -> None:
    """Set gauge ``name`` on the active session's registry."""
    t = _ACTIVE
    if t is None:
        return
    if t.pid != os.getpid() or t._suspended:
        return
    t.registry.gauge(name).set(value)


def observe(name: str, value: float,
            buckets: tuple[float, ...] | None = None,
            trace_id: str | None = None) -> None:
    """Record ``value`` into histogram ``name`` on the active session.

    ``trace_id`` attaches a latency exemplar: the histogram remembers
    the trace behind the bucket-max sample so reports can link tail
    quantiles to concrete request traces.
    """
    t = _ACTIVE
    if t is None:
        return
    if t.pid != os.getpid() or t._suspended:
        return
    t.registry.histogram(name, buckets).observe(value, trace_id)


def emit(name: str, **fields) -> None:
    """Write a structured event record to the active session's sink."""
    t = _ACTIVE
    if t is None:
        return
    if t.pid != os.getpid() or t._suspended:
        return
    t.emit(name, **fields)
