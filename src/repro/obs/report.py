"""Aggregate a telemetry JSONL stream into a run report.

:func:`load_events` reads a stream written by :class:`~repro.obs.Telemetry`
(tolerating a torn final line from a crashed run), :func:`build_report`
folds it into a JSON-ready dict, and :func:`render_report` formats that
dict for terminals.  This backs the ``repro obs report`` CLI verb.

The report sections:

* **phases** — wall-time totals per span name, with the paper-relevant
  trio (encode / inner_loop / decode) broken out as percentages of
  their combined time;
* **executor** — retry/quarantine/error/pool-restart/refund counters
  from ``evaluate_method``'s parallel path;
* **cache** — adaptation-cache hit rate;
* **store** — persistent content-store traffic (hits/misses/puts) and
  health (errors, quarantined segments, truncated tails);
* **metrics** — the final merged counter/gauge/histogram snapshot;
* **events** — non-span events (breaker transitions, guard anomalies,
  checkpoint activity) rendered through the one formatting path.
"""

from __future__ import annotations

import json
import os

from repro.obs.events import render_event, sibling_paths

#: Span names that make up the per-episode adaptation pipeline.
PHASE_NAMES = ("encode", "inner_loop", "decode")

#: Internal tag marking which sibling file a record came from.
_SOURCE_KEY = "_source"


def _load_one(path: str, source: str | None) -> list[dict]:
    records: list[dict] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn tail from a crashed writer
            if isinstance(record, dict):
                if source is not None:
                    record[_SOURCE_KEY] = source
                records.append(record)
    return records


def load_events(path: str, include_siblings: bool = True) -> list[dict]:
    """Read a telemetry JSONL file, skipping torn/blank lines.

    With ``include_siblings`` (the default) the per-replica and
    per-fork sibling files a fleet run leaves next to ``path``
    (``<path>.replica-<id>``, ``<path>.fork-<pid>``) are read too, so
    one ``repro obs report`` aggregates the whole fleet.  Each record
    is tagged with its source file so metrics snapshots from different
    processes are *summed*, never overwritten.
    """
    paths = sibling_paths(path) if include_siblings else [path]
    if not paths:
        paths = [path]  # let open() raise the natural error
    records: list[dict] = []
    for p in paths:
        # Single-stream loads stay byte-for-byte round-trippable; only
        # a genuine fleet merge tags records with their source file.
        source = os.path.basename(p) if len(paths) > 1 else None
        records.extend(_load_one(p, source=source))
    return records


def _merge_metrics(records: list[dict]) -> dict:
    """Fold metrics snapshots into one fleet-wide view.

    Within one source file, a later snapshot supersedes an earlier one
    (snapshots are cumulative).  *Across* source files the final
    snapshots describe different processes, so counters and histogram
    tallies are summed; gauges are point-in-time values and keep the
    last writer's reading.
    """
    finals: dict[str, dict] = {}
    order: list[str] = []
    for record in records:
        if record.get("kind") != "metrics":
            continue
        source = record.get(_SOURCE_KEY, "")
        if source not in finals:
            order.append(source)
        finals[source] = record
    merged = {"counters": {}, "gauges": {}, "histograms": {}}
    for source in order:
        record = finals[source]
        for name, value in record.get("counters", {}).items():
            merged["counters"][name] = merged["counters"].get(name, 0) + value
        merged["gauges"].update(record.get("gauges", {}))
        for name, snap in record.get("histograms", {}).items():
            have = merged["histograms"].get(name)
            if have is None or have.get("buckets") != snap.get("buckets"):
                merged["histograms"][name] = {
                    "buckets": list(snap.get("buckets", [])),
                    "counts": list(snap.get("counts", [])),
                    "count": snap.get("count", 0),
                    "sum": snap.get("sum", 0.0),
                }
            else:
                have["counts"] = [a + b for a, b in
                                  zip(have["counts"], snap.get("counts", []))]
                have["count"] += snap.get("count", 0)
                have["sum"] = round(have["sum"] + snap.get("sum", 0.0), 6)
    return merged


def build_report(records: list[dict]) -> dict:
    """Fold a list of telemetry records into an aggregated report dict."""
    spans: dict[str, dict] = {}
    events: list[dict] = []
    sessions = 0
    sources = sorted({r[_SOURCE_KEY] for r in records if _SOURCE_KEY in r})
    for record in records:
        kind = record.get("kind")
        if kind == "span":
            name = record.get("name", "?")
            agg = spans.setdefault(
                name, {"count": 0, "total_s": 0.0, "max_s": 0.0, "errors": 0}
            )
            dur = float(record.get("dur_s", 0.0))
            agg["count"] += 1
            agg["total_s"] += dur
            if dur > agg["max_s"]:
                agg["max_s"] = dur
            if record.get("status") == "error":
                agg["errors"] += 1
        elif kind == "event":
            events.append({k: v for k, v in record.items()
                           if k != _SOURCE_KEY})
        elif kind == "session":
            sessions += 1

    for agg in spans.values():
        agg["total_s"] = round(agg["total_s"], 9)
        agg["max_s"] = round(agg["max_s"], 9)

    phase_total = sum(spans[p]["total_s"] for p in PHASE_NAMES if p in spans)
    phases = {}
    for name in PHASE_NAMES:
        if name not in spans:
            continue
        total = spans[name]["total_s"]
        phases[name] = {
            "total_s": total,
            "count": spans[name]["count"],
            "share_pct": round(100.0 * total / phase_total, 1) if phase_total else 0.0,
        }

    metrics = _merge_metrics(records)
    counters = metrics["counters"]
    executor = {
        "episodes": counters.get("executor.episodes", 0),
        "retried": counters.get("executor.retries", 0),
        "quarantined": counters.get("executor.quarantined", 0),
        "errors": counters.get("executor.errors", 0),
        "pool_restarts": counters.get("executor.pool_restarts", 0),
        "refunds": counters.get("executor.refunds", 0),
    }
    hits = counters.get("adaptation_cache.hit", 0)
    misses = counters.get("adaptation_cache.miss", 0)
    cache = {
        "hits": hits,
        "misses": misses,
        "hit_rate": round(hits / (hits + misses), 4) if hits + misses else None,
    }
    gateway = {
        key: counters.get(f"gateway.{key}", 0)
        for key in ("admitted", "completed", "shed", "refunds", "hedges",
                    "hedges_won", "deaths", "wedges", "rebuilds", "reloads",
                    "breaker_transitions")
    }
    gauges = metrics["gauges"]
    overload = {
        "level": gauges.get("overload.level"),
        "transitions": counters.get("overload.transitions", 0),
        "shed": {
            name: counters.get(f"overload.shed.{name}", 0)
            for name in ("interactive", "standard", "batch")
        },
        "expired": counters.get("serving.expired", 0),
        "hedges_denied": counters.get("gateway.hedges_denied", 0),
        "evictions": counters.get("gateway.evictions", 0),
        "retry_budget_balance": gauges.get("retry_budget.balance"),
    }
    s_hits = counters.get("store.hit", 0)
    s_misses = counters.get("store.miss", 0)
    store = {
        "hits": s_hits,
        "misses": s_misses,
        "puts": counters.get("store.put", 0),
        "errors": counters.get("store.errors", 0),
        "quarantined": counters.get("store.quarantined_segments", 0),
        "truncated_tails": counters.get("store.truncated_tails", 0),
        "hit_rate": (round(s_hits / (s_hits + s_misses), 4)
                     if s_hits + s_misses else None),
    }
    return {
        "sessions": sessions,
        "sources": sources,
        "spans": {name: spans[name] for name in sorted(spans)},
        "phases": phases,
        "executor": executor,
        "cache": cache,
        "store": store,
        "gateway": gateway,
        "overload": overload,
        "metrics": metrics,
        "events": events,
    }


def _fmt_seconds(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.2f} s"
    return f"{seconds * 1000.0:.2f} ms"


def render_report(report: dict) -> str:
    """Format a :func:`build_report` dict for a terminal."""
    lines: list[str] = ["run report"]

    sources = report.get("sources", [])
    if len(sources) > 1:
        lines.append(f"  fleet run: merged {len(sources)} event streams")

    phases = report.get("phases", {})
    if phases:
        lines.append("  phase breakdown (encode / inner-loop / decode):")
        for name in PHASE_NAMES:
            if name not in phases:
                continue
            p = phases[name]
            lines.append(
                f"    {name:<11} {_fmt_seconds(p['total_s']):>10}"
                f"  {p['share_pct']:5.1f}%  ({p['count']} spans)"
            )

    other = {n: s for n, s in report.get("spans", {}).items()
             if n not in phases}
    if other:
        lines.append("  other spans:")
        for name in sorted(other):
            s = other[name]
            err = f", {s['errors']} errors" if s.get("errors") else ""
            lines.append(
                f"    {name:<16} {_fmt_seconds(s['total_s']):>10}"
                f"  ({s['count']} spans{err})"
            )

    executor = report.get("executor", {})
    if executor.get("episodes"):
        lines.append(
            "  executor: {episodes} episodes — retried {retried}, "
            "quarantined {quarantined}, errors {errors}, "
            "pool restarts {pool_restarts}, refunds {refunds}".format(**executor)
        )

    gateway = report.get("gateway", {})
    if gateway.get("admitted"):
        lines.append(
            "  gateway: {admitted} admitted, {completed} completed, "
            "{shed} shed — hedges {hedges} ({hedges_won} won), "
            "deaths {deaths}, wedges {wedges}, rebuilds {rebuilds}, "
            "refunds {refunds}, reloads {reloads}, "
            "breaker transitions {breaker_transitions}".format(**gateway)
        )

    overload = report.get("overload", {})
    shed = overload.get("shed", {})
    if (overload.get("transitions") or any(shed.values())
            or overload.get("expired") or overload.get("hedges_denied")):
        balance = overload.get("retry_budget_balance")
        level = overload.get("level")
        lines.append(
            f"  overload: level {int(level) if level is not None else 0} "
            f"({overload.get('transitions', 0)} transitions), shed "
            f"interactive={shed.get('interactive', 0)} "
            f"standard={shed.get('standard', 0)} "
            f"batch={shed.get('batch', 0)}, "
            f"expired {overload.get('expired', 0)}, "
            f"hedges denied {overload.get('hedges_denied', 0)}, "
            f"evictions {overload.get('evictions', 0)}"
            + (f", retry budget {balance:g}" if balance is not None else "")
        )

    cache = report.get("cache", {})
    if cache.get("hit_rate") is not None:
        lines.append(
            f"  adaptation cache: {cache['hits']} hits / {cache['misses']} misses"
            f" (hit rate {100.0 * cache['hit_rate']:.1f}%)"
        )

    store = report.get("store", {})
    if store.get("hit_rate") is not None or store.get("errors"):
        rate = store.get("hit_rate")
        rate_txt = f"{100.0 * rate:.1f}%" if rate is not None else "n/a"
        line = (
            f"  persistent store: {store.get('hits', 0)} hits / "
            f"{store.get('misses', 0)} misses (hit rate {rate_txt}), "
            f"{store.get('puts', 0)} puts"
        )
        health = []
        if store.get("errors"):
            health.append(f"{store['errors']} errors")
        if store.get("quarantined"):
            health.append(f"{store['quarantined']} quarantined")
        if store.get("truncated_tails"):
            health.append(f"{store['truncated_tails']} truncated tails")
        if health:
            line += " — " + ", ".join(health)
        lines.append(line)

    gauges = report.get("metrics", {}).get("gauges", {})
    if "tape.max_nodes_per_backward" in gauges:
        lines.append(
            f"  tape: max {int(gauges['tape.max_nodes_per_backward'])} nodes/backward"
            f", peak live {int(gauges.get('tape.peak_live_bytes', 0))} bytes"
        )

    histograms = report.get("metrics", {}).get("histograms", {})
    for name in sorted(histograms):
        h = histograms[name]
        if not h.get("count"):
            continue
        mean = h["sum"] / h["count"]
        lines.append(f"  {name}: n={h['count']}, mean={mean:.3f}")

    # Healthy per-episode events are already aggregated into the
    # executor counters; rendering them individually would drown the
    # report, so only eventful ones (retries, failures) are listed.
    def notable(record: dict) -> bool:
        if record.get("name") != "episode":
            return True
        return record.get("outcome") != "ok" or record.get("attempts", 1) > 1

    events = [r for r in report.get("events", []) if notable(r)]
    if events:
        lines.append("  events:")
        for record in events:
            lines.append(f"    {render_event(record)}")

    if len(lines) == 1:
        lines.append("  (no telemetry records)")
    return "\n".join(lines)
