"""Aggregate a telemetry JSONL stream into a run report.

:func:`load_events` reads a stream written by :class:`~repro.obs.Telemetry`
(tolerating a torn final line from a crashed run), :func:`build_report`
folds it into a JSON-ready dict, and :func:`render_report` formats that
dict for terminals.  This backs the ``repro obs report`` CLI verb.

The report sections:

* **phases** — wall-time totals per span name, with the paper-relevant
  trio (encode / inner_loop / decode) broken out as percentages of
  their combined time;
* **executor** — retry/quarantine/error/pool-restart/refund counters
  from ``evaluate_method``'s parallel path;
* **cache** — adaptation-cache hit rate;
* **store** — persistent content-store traffic (hits/misses/puts) and
  health (errors, quarantined segments, truncated tails);
* **metrics** — the final merged counter/gauge/histogram snapshot;
* **events** — non-span events (breaker transitions, guard anomalies,
  checkpoint activity) rendered through the one formatting path.
"""

from __future__ import annotations

import json
import os

from repro.obs.events import (
    SCHEMA_MAJOR,
    SCHEMA_VERSION,
    render_event,
    sibling_paths,
)
from repro.obs.reqtrace import HOP_ORDER, TERMINAL_HOPS, TRACE_EVENT

#: Span names that make up the per-episode adaptation pipeline.
PHASE_NAMES = ("encode", "inner_loop", "decode")

#: Internal tag marking which sibling file a record came from.
_SOURCE_KEY = "_source"


class SchemaVersionError(ValueError):
    """A telemetry stream was written by an incompatibly newer repro."""


def check_schema(records: list[dict]) -> None:
    """Refuse streams written with a future-major telemetry schema.

    Streams without a ``schema_version`` predate versioning and are
    read as 1.0.  Minor bumps are additive and accepted; a major bump
    means the record shapes changed incompatibly, so reading on would
    silently mis-aggregate — raise with a clear upgrade message
    instead.
    """
    for record in records:
        if record.get("kind") != "session":
            continue
        version = record.get("schema_version")
        if version is None:
            continue
        try:
            major = int(str(version).split(".", 1)[0])
        except ValueError:
            raise SchemaVersionError(
                f"unrecognized telemetry schema_version {version!r} "
                f"(this build reads schema {SCHEMA_VERSION})"
            ) from None
        if major > SCHEMA_MAJOR:
            source = record.get(_SOURCE_KEY) or "this stream"
            raise SchemaVersionError(
                f"{source} was written with telemetry schema {version}; "
                f"this build reads schema major {SCHEMA_MAJOR} "
                f"({SCHEMA_VERSION}) — upgrade repro to read it"
            )


def _load_one(path: str, source: str | None) -> list[dict]:
    records: list[dict] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn tail from a crashed writer
            if isinstance(record, dict):
                if source is not None:
                    record[_SOURCE_KEY] = source
                records.append(record)
    return records


def load_events(path: str, include_siblings: bool = True) -> list[dict]:
    """Read a telemetry JSONL file, skipping torn/blank lines.

    With ``include_siblings`` (the default) the per-replica and
    per-fork sibling files a fleet run leaves next to ``path``
    (``<path>.replica-<id>``, ``<path>.fork-<pid>``) are read too, so
    one ``repro obs report`` aggregates the whole fleet.  Each record
    is tagged with its source file so metrics snapshots from different
    processes are *summed*, never overwritten.
    """
    paths = sibling_paths(path) if include_siblings else [path]
    if not paths:
        paths = [path]  # let open() raise the natural error
    records: list[dict] = []
    for p in paths:
        # Single-stream loads stay byte-for-byte round-trippable; only
        # a genuine fleet merge tags records with their source file.
        source = os.path.basename(p) if len(paths) > 1 else None
        records.extend(_load_one(p, source=source))
    return records


def _merge_metrics(records: list[dict]) -> dict:
    """Fold metrics snapshots into one fleet-wide view.

    Within one source file, a later snapshot supersedes an earlier one
    (snapshots are cumulative).  *Across* source files the final
    snapshots describe different processes, so counters and histogram
    tallies are summed; gauges are point-in-time values and keep the
    last writer's reading.
    """
    finals: dict[str, dict] = {}
    order: list[str] = []
    for record in records:
        if record.get("kind") != "metrics":
            continue
        source = record.get(_SOURCE_KEY, "")
        if source not in finals:
            order.append(source)
        finals[source] = record
    merged = {"counters": {}, "gauges": {}, "histograms": {}}
    for source in order:
        record = finals[source]
        for name, value in record.get("counters", {}).items():
            merged["counters"][name] = merged["counters"].get(name, 0) + value
        merged["gauges"].update(record.get("gauges", {}))
        for name, snap in record.get("histograms", {}).items():
            have = merged["histograms"].get(name)
            if have is None or have.get("buckets") != snap.get("buckets"):
                merged["histograms"][name] = {
                    "buckets": list(snap.get("buckets", [])),
                    "counts": list(snap.get("counts", [])),
                    "count": snap.get("count", 0),
                    "sum": snap.get("sum", 0.0),
                }
            else:
                have["counts"] = [a + b for a, b in
                                  zip(have["counts"], snap.get("counts", []))]
                have["count"] += snap.get("count", 0)
                have["sum"] = round(have["sum"] + snap.get("sum", 0.0), 6)
            _merge_exemplars(merged["histograms"][name], snap)
    return merged


def _merge_exemplars(have: dict, snap: dict) -> None:
    """Keep, per bucket, the exemplar with the largest sample value."""
    exemplars = snap.get("exemplars")
    if not exemplars:
        return
    merged = have.setdefault("exemplars", {})
    for bucket, entry in exemplars.items():
        current = merged.get(bucket)
        if current is None or entry.get("value", 0.0) >= current.get("value", 0.0):
            merged[bucket] = dict(entry)


# ----------------------------------------------------------------------
# Trace assembly: stitch per-hop records from all sibling streams back
# into one cross-process timeline per trace id.


def assemble_traces(records: list[dict]) -> list[dict]:
    """Stitch ``trace.hop`` records into per-trace timelines.

    Sibling streams have *independent* clocks (each process measures
    ``t`` from its own session start), so hops are ordered by the causal
    hop taxonomy (``HOP_ORDER``), then source file, then in-file
    position — never by comparing ``t`` across files.  The result is
    sorted by trace id and fully deterministic for a seeded run.

    Each entry carries ``rooted`` (the trace starts at an admission or
    an admission-time drop), ``terminal`` (the hop that ended it, or
    ``None`` if it was still in flight when the stream stopped) and
    ``complete`` (rooted *and* terminated — no gaps at either end).
    """
    traces: dict[str, dict] = {}
    for index, record in enumerate(records):
        if record.get("kind") != "event" or record.get("name") != TRACE_EVENT:
            continue
        trace_id = record.get("trace")
        if not isinstance(trace_id, str):
            continue
        entry = traces.setdefault(
            trace_id,
            {"trace": trace_id, "ticket": None, "hops": [], "sources": set()},
        )
        hop = {key: value for key, value in record.items()
               if key not in ("kind", "name")}
        hop["source"] = hop.pop(_SOURCE_KEY, "") or ""
        hop["_index"] = index
        entry["hops"].append(hop)
        entry["sources"].add(hop["source"])
        if entry["ticket"] is None and hop.get("ticket") is not None:
            entry["ticket"] = hop["ticket"]

    out: list[dict] = []
    unknown = len(HOP_ORDER)
    for trace_id in sorted(traces):
        entry = traces[trace_id]
        entry["hops"].sort(key=lambda h: (
            HOP_ORDER.get(h.get("hop"), unknown), h["source"], h["_index"]
        ))
        for hop in entry["hops"]:
            del hop["_index"]
        entry["sources"] = sorted(entry["sources"])
        names = [h.get("hop") for h in entry["hops"]]
        entry["rooted"] = ("admit" in names
                           or (bool(names) and names[0] in TERMINAL_HOPS))
        entry["terminal"] = next(
            (n for n in reversed(names) if n in TERMINAL_HOPS), None
        )
        entry["complete"] = bool(entry["rooted"] and entry["terminal"])
        out.append(entry)
    return out


def find_traces(traces: list[dict], needle: str) -> list[dict]:
    """Traces whose id matches ``needle`` exactly or by prefix."""
    exact = [t for t in traces if t["trace"] == needle]
    if exact:
        return exact
    return [t for t in traces if t["trace"].startswith(needle)]


def _trace_breakdown(trace: dict) -> dict:
    """Queue-wait / decode / delivery split along the critical path."""
    hops = trace["hops"]
    wait_ms = next((h.get("wait_ms") for h in hops
                    if h.get("hop") == "dispatch" and "wait_ms" in h), None)
    decode_values = [h["decode_ms"] for h in hops
                     if h.get("hop") == "decode" and "decode_ms" in h]
    decode_ms = max(decode_values) if decode_values else None
    total_ms = next((h["latency_ms"] for h in reversed(hops)
                     if h.get("hop") == "respond" and "latency_ms" in h), None)
    other_ms = None
    if total_ms is not None:
        other_ms = round(
            max(0.0, total_ms - (wait_ms or 0.0) - (decode_ms or 0.0)), 3
        )
    return {"queue_wait_ms": wait_ms, "decode_ms": decode_ms,
            "other_ms": other_ms, "total_ms": total_ms,
            "hedged": any(h.get("hop") == "hedge" for h in hops)}


def render_trace(trace: dict) -> str:
    """Format one assembled trace as a per-hop timeline for terminals."""
    status = ("complete" if trace.get("complete")
              else "orphan" if not trace.get("rooted") else "incomplete")
    ticket = trace.get("ticket")
    ticket_txt = f"ticket {ticket}" if ticket is not None else "ticket ?"
    sources = trace.get("sources", [])
    lines = [
        f"trace {trace['trace']} — {ticket_txt}, {status}, "
        f"{len(sources)} stream(s)"
    ]
    for hop in trace.get("hops", []):
        where = hop.get("source") or "main"
        extras = " ".join(
            f"{key}={hop[key]}" for key in sorted(hop)
            if key not in ("hop", "span", "trace", "source", "ticket", "t")
        )
        lines.append(f"  {hop.get('hop', '?'):<9} [{where}]"
                     + (f" {extras}" if extras else ""))
    breakdown = _trace_breakdown(trace)
    if breakdown["total_ms"] is not None:
        parts = [f"total {breakdown['total_ms']:.3f} ms"]
        if breakdown["queue_wait_ms"] is not None:
            parts.append(f"queue wait {breakdown['queue_wait_ms']:.3f} ms")
        if breakdown["decode_ms"] is not None:
            parts.append(f"decode {breakdown['decode_ms']:.3f} ms")
        if breakdown["other_ms"] is not None:
            parts.append(f"other {breakdown['other_ms']:.3f} ms")
        line = "  critical path: " + ", ".join(parts)
        if breakdown["hedged"]:
            line += " (hedged)"
        lines.append(line)
    return "\n".join(lines)


def build_report(records: list[dict]) -> dict:
    """Fold a list of telemetry records into an aggregated report dict.

    Raises :class:`SchemaVersionError` when any session header declares
    a future-major ``schema_version``.
    """
    check_schema(records)
    spans: dict[str, dict] = {}
    events: list[dict] = []
    sessions = 0
    sources = sorted({r[_SOURCE_KEY] for r in records if _SOURCE_KEY in r})
    for record in records:
        kind = record.get("kind")
        if kind == "span":
            name = record.get("name", "?")
            agg = spans.setdefault(
                name, {"count": 0, "total_s": 0.0, "max_s": 0.0, "errors": 0}
            )
            dur = float(record.get("dur_s", 0.0))
            agg["count"] += 1
            agg["total_s"] += dur
            if dur > agg["max_s"]:
                agg["max_s"] = dur
            if record.get("status") == "error":
                agg["errors"] += 1
        elif kind == "event":
            if record.get("name") == TRACE_EVENT:
                continue  # hop records are aggregated into `traces`
            events.append({k: v for k, v in record.items()
                           if k != _SOURCE_KEY})
        elif kind == "session":
            sessions += 1

    for agg in spans.values():
        agg["total_s"] = round(agg["total_s"], 9)
        agg["max_s"] = round(agg["max_s"], 9)

    phase_total = sum(spans[p]["total_s"] for p in PHASE_NAMES if p in spans)
    phases = {}
    for name in PHASE_NAMES:
        if name not in spans:
            continue
        total = spans[name]["total_s"]
        phases[name] = {
            "total_s": total,
            "count": spans[name]["count"],
            "share_pct": round(100.0 * total / phase_total, 1) if phase_total else 0.0,
        }

    metrics = _merge_metrics(records)
    counters = metrics["counters"]
    executor = {
        "episodes": counters.get("executor.episodes", 0),
        "retried": counters.get("executor.retries", 0),
        "quarantined": counters.get("executor.quarantined", 0),
        "errors": counters.get("executor.errors", 0),
        "pool_restarts": counters.get("executor.pool_restarts", 0),
        "refunds": counters.get("executor.refunds", 0),
    }
    hits = counters.get("adaptation_cache.hit", 0)
    misses = counters.get("adaptation_cache.miss", 0)
    cache = {
        "hits": hits,
        "misses": misses,
        "hit_rate": round(hits / (hits + misses), 4) if hits + misses else None,
    }
    gateway = {
        key: counters.get(f"gateway.{key}", 0)
        for key in ("admitted", "completed", "shed", "refunds", "hedges",
                    "hedges_won", "deaths", "wedges", "rebuilds", "reloads",
                    "breaker_transitions")
    }
    gauges = metrics["gauges"]
    overload = {
        "level": gauges.get("overload.level"),
        "transitions": counters.get("overload.transitions", 0),
        "shed": {
            name: counters.get(f"overload.shed.{name}", 0)
            for name in ("interactive", "standard", "batch")
        },
        "expired": counters.get("serving.expired", 0),
        "hedges_denied": counters.get("gateway.hedges_denied", 0),
        "evictions": counters.get("gateway.evictions", 0),
        "retry_budget_balance": gauges.get("retry_budget.balance"),
    }
    s_hits = counters.get("store.hit", 0)
    s_misses = counters.get("store.miss", 0)
    store = {
        "hits": s_hits,
        "misses": s_misses,
        "puts": counters.get("store.put", 0),
        "errors": counters.get("store.errors", 0),
        "quarantined": counters.get("store.quarantined_segments", 0),
        "truncated_tails": counters.get("store.truncated_tails", 0),
        "hit_rate": (round(s_hits / (s_hits + s_misses), 4)
                     if s_hits + s_misses else None),
    }
    traces = assemble_traces(records)
    trace_section = {
        "count": len(traces),
        "complete": sum(1 for t in traces if t["complete"]),
        "incomplete": sum(1 for t in traces
                          if t["rooted"] and not t["complete"]),
        "orphans": [t["trace"] for t in traces if not t["rooted"]][:8],
        "exemplars": _exemplar_links(metrics["histograms"]),
    }
    return {
        "schema_version": SCHEMA_VERSION,
        "sessions": sessions,
        "sources": sources,
        "spans": {name: spans[name] for name in sorted(spans)},
        "phases": phases,
        "executor": executor,
        "cache": cache,
        "store": store,
        "gateway": gateway,
        "overload": overload,
        "traces": trace_section,
        "metrics": metrics,
        "events": events,
    }


def _exemplar_links(histograms: dict) -> dict:
    """Per histogram, the trace behind the slowest recorded sample."""
    links: dict[str, dict] = {}
    for name in sorted(histograms):
        exemplars = histograms[name].get("exemplars") or {}
        if not exemplars:
            continue
        top = max(exemplars, key=lambda bucket: int(bucket))
        entry = exemplars[top]
        links[name] = {"value": entry.get("value"),
                       "trace": entry.get("trace")}
    return links


def _fmt_seconds(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.2f} s"
    return f"{seconds * 1000.0:.2f} ms"


def render_report(report: dict) -> str:
    """Format a :func:`build_report` dict for a terminal."""
    lines: list[str] = ["run report"]

    sources = report.get("sources", [])
    if len(sources) > 1:
        lines.append(f"  fleet run: merged {len(sources)} event streams")

    phases = report.get("phases", {})
    if phases:
        lines.append("  phase breakdown (encode / inner-loop / decode):")
        for name in PHASE_NAMES:
            if name not in phases:
                continue
            p = phases[name]
            lines.append(
                f"    {name:<11} {_fmt_seconds(p['total_s']):>10}"
                f"  {p['share_pct']:5.1f}%  ({p['count']} spans)"
            )

    other = {n: s for n, s in report.get("spans", {}).items()
             if n not in phases}
    if other:
        lines.append("  other spans:")
        for name in sorted(other):
            s = other[name]
            err = f", {s['errors']} errors" if s.get("errors") else ""
            lines.append(
                f"    {name:<16} {_fmt_seconds(s['total_s']):>10}"
                f"  ({s['count']} spans{err})"
            )

    executor = report.get("executor", {})
    if executor.get("episodes"):
        lines.append(
            "  executor: {episodes} episodes — retried {retried}, "
            "quarantined {quarantined}, errors {errors}, "
            "pool restarts {pool_restarts}, refunds {refunds}".format(**executor)
        )

    gateway = report.get("gateway", {})
    if gateway.get("admitted"):
        lines.append(
            "  gateway: {admitted} admitted, {completed} completed, "
            "{shed} shed — hedges {hedges} ({hedges_won} won), "
            "deaths {deaths}, wedges {wedges}, rebuilds {rebuilds}, "
            "refunds {refunds}, reloads {reloads}, "
            "breaker transitions {breaker_transitions}".format(**gateway)
        )

    overload = report.get("overload", {})
    shed = overload.get("shed", {})
    if (overload.get("transitions") or any(shed.values())
            or overload.get("expired") or overload.get("hedges_denied")):
        balance = overload.get("retry_budget_balance")
        level = overload.get("level")
        lines.append(
            f"  overload: level {int(level) if level is not None else 0} "
            f"({overload.get('transitions', 0)} transitions), shed "
            f"interactive={shed.get('interactive', 0)} "
            f"standard={shed.get('standard', 0)} "
            f"batch={shed.get('batch', 0)}, "
            f"expired {overload.get('expired', 0)}, "
            f"hedges denied {overload.get('hedges_denied', 0)}, "
            f"evictions {overload.get('evictions', 0)}"
            + (f", retry budget {balance:g}" if balance is not None else "")
        )

    cache = report.get("cache", {})
    if cache.get("hit_rate") is not None:
        lines.append(
            f"  adaptation cache: {cache['hits']} hits / {cache['misses']} misses"
            f" (hit rate {100.0 * cache['hit_rate']:.1f}%)"
        )

    store = report.get("store", {})
    if store.get("hit_rate") is not None or store.get("errors"):
        rate = store.get("hit_rate")
        rate_txt = f"{100.0 * rate:.1f}%" if rate is not None else "n/a"
        line = (
            f"  persistent store: {store.get('hits', 0)} hits / "
            f"{store.get('misses', 0)} misses (hit rate {rate_txt}), "
            f"{store.get('puts', 0)} puts"
        )
        health = []
        if store.get("errors"):
            health.append(f"{store['errors']} errors")
        if store.get("quarantined"):
            health.append(f"{store['quarantined']} quarantined")
        if store.get("truncated_tails"):
            health.append(f"{store['truncated_tails']} truncated tails")
        if health:
            line += " — " + ", ".join(health)
        lines.append(line)

    gauges = report.get("metrics", {}).get("gauges", {})
    if "tape.max_nodes_per_backward" in gauges:
        lines.append(
            f"  tape: max {int(gauges['tape.max_nodes_per_backward'])} nodes/backward"
            f", peak live {int(gauges.get('tape.peak_live_bytes', 0))} bytes"
        )

    traces = report.get("traces", {})
    if traces.get("count"):
        orphans = traces.get("orphans", [])
        lines.append(
            f"  traces: {traces['count']} assembled — "
            f"{traces.get('complete', 0)} complete, "
            f"{traces.get('incomplete', 0)} incomplete, "
            f"{len(orphans)} orphan"
        )
        for name, link in sorted(traces.get("exemplars", {}).items()):
            lines.append(
                f"    slowest {name}: {link.get('value', 0.0):.3f} ms "
                f"-> trace {link.get('trace', '?')}"
            )

    histograms = report.get("metrics", {}).get("histograms", {})
    for name in sorted(histograms):
        h = histograms[name]
        if not h.get("count"):
            continue
        mean = h["sum"] / h["count"]
        lines.append(f"  {name}: n={h['count']}, mean={mean:.3f}")

    # Healthy per-episode events are already aggregated into the
    # executor counters; rendering them individually would drown the
    # report, so only eventful ones (retries, failures) are listed.
    def notable(record: dict) -> bool:
        if record.get("name") != "episode":
            return True
        return record.get("outcome") != "ok" or record.get("attempts", 1) > 1

    events = [r for r in report.get("events", []) if notable(r)]
    if events:
        lines.append("  events:")
        for record in events:
            lines.append(f"    {render_event(record)}")

    if len(lines) == 1:
        lines.append("  (no telemetry records)")
    return "\n".join(lines)
