"""Aggregate a telemetry JSONL stream into a run report.

:func:`load_events` reads a stream written by :class:`~repro.obs.Telemetry`
(tolerating a torn final line from a crashed run), :func:`build_report`
folds it into a JSON-ready dict, and :func:`render_report` formats that
dict for terminals.  This backs the ``repro obs report`` CLI verb.

The report sections:

* **phases** — wall-time totals per span name, with the paper-relevant
  trio (encode / inner_loop / decode) broken out as percentages of
  their combined time;
* **executor** — retry/quarantine/error/pool-restart/refund counters
  from ``evaluate_method``'s parallel path;
* **cache** — adaptation-cache hit rate;
* **metrics** — the final merged counter/gauge/histogram snapshot;
* **events** — non-span events (breaker transitions, guard anomalies,
  checkpoint activity) rendered through the one formatting path.
"""

from __future__ import annotations

import json

from repro.obs.events import render_event

#: Span names that make up the per-episode adaptation pipeline.
PHASE_NAMES = ("encode", "inner_loop", "decode")


def load_events(path: str) -> list[dict]:
    """Read a telemetry JSONL file, skipping torn/blank lines."""
    records: list[dict] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn tail from a crashed writer
            if isinstance(record, dict):
                records.append(record)
    return records


def _merge_metrics(records: list[dict]) -> dict:
    merged = {"counters": {}, "gauges": {}, "histograms": {}}
    for record in records:
        if record.get("kind") != "metrics":
            continue
        for section in merged:
            merged[section].update(record.get(section, {}))
    return merged


def build_report(records: list[dict]) -> dict:
    """Fold a list of telemetry records into an aggregated report dict."""
    spans: dict[str, dict] = {}
    events: list[dict] = []
    sessions = 0
    for record in records:
        kind = record.get("kind")
        if kind == "span":
            name = record.get("name", "?")
            agg = spans.setdefault(
                name, {"count": 0, "total_s": 0.0, "max_s": 0.0, "errors": 0}
            )
            dur = float(record.get("dur_s", 0.0))
            agg["count"] += 1
            agg["total_s"] += dur
            if dur > agg["max_s"]:
                agg["max_s"] = dur
            if record.get("status") == "error":
                agg["errors"] += 1
        elif kind == "event":
            events.append(record)
        elif kind == "session":
            sessions += 1

    for agg in spans.values():
        agg["total_s"] = round(agg["total_s"], 9)
        agg["max_s"] = round(agg["max_s"], 9)

    phase_total = sum(spans[p]["total_s"] for p in PHASE_NAMES if p in spans)
    phases = {}
    for name in PHASE_NAMES:
        if name not in spans:
            continue
        total = spans[name]["total_s"]
        phases[name] = {
            "total_s": total,
            "count": spans[name]["count"],
            "share_pct": round(100.0 * total / phase_total, 1) if phase_total else 0.0,
        }

    metrics = _merge_metrics(records)
    counters = metrics["counters"]
    executor = {
        "episodes": counters.get("executor.episodes", 0),
        "retried": counters.get("executor.retries", 0),
        "quarantined": counters.get("executor.quarantined", 0),
        "errors": counters.get("executor.errors", 0),
        "pool_restarts": counters.get("executor.pool_restarts", 0),
        "refunds": counters.get("executor.refunds", 0),
    }
    hits = counters.get("adaptation_cache.hit", 0)
    misses = counters.get("adaptation_cache.miss", 0)
    cache = {
        "hits": hits,
        "misses": misses,
        "hit_rate": round(hits / (hits + misses), 4) if hits + misses else None,
    }
    return {
        "sessions": sessions,
        "spans": {name: spans[name] for name in sorted(spans)},
        "phases": phases,
        "executor": executor,
        "cache": cache,
        "metrics": metrics,
        "events": events,
    }


def _fmt_seconds(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.2f} s"
    return f"{seconds * 1000.0:.2f} ms"


def render_report(report: dict) -> str:
    """Format a :func:`build_report` dict for a terminal."""
    lines: list[str] = ["run report"]

    phases = report.get("phases", {})
    if phases:
        lines.append("  phase breakdown (encode / inner-loop / decode):")
        for name in PHASE_NAMES:
            if name not in phases:
                continue
            p = phases[name]
            lines.append(
                f"    {name:<11} {_fmt_seconds(p['total_s']):>10}"
                f"  {p['share_pct']:5.1f}%  ({p['count']} spans)"
            )

    other = {n: s for n, s in report.get("spans", {}).items()
             if n not in phases}
    if other:
        lines.append("  other spans:")
        for name in sorted(other):
            s = other[name]
            err = f", {s['errors']} errors" if s.get("errors") else ""
            lines.append(
                f"    {name:<16} {_fmt_seconds(s['total_s']):>10}"
                f"  ({s['count']} spans{err})"
            )

    executor = report.get("executor", {})
    if executor.get("episodes"):
        lines.append(
            "  executor: {episodes} episodes — retried {retried}, "
            "quarantined {quarantined}, errors {errors}, "
            "pool restarts {pool_restarts}, refunds {refunds}".format(**executor)
        )

    cache = report.get("cache", {})
    if cache.get("hit_rate") is not None:
        lines.append(
            f"  adaptation cache: {cache['hits']} hits / {cache['misses']} misses"
            f" (hit rate {100.0 * cache['hit_rate']:.1f}%)"
        )

    gauges = report.get("metrics", {}).get("gauges", {})
    if "tape.max_nodes_per_backward" in gauges:
        lines.append(
            f"  tape: max {int(gauges['tape.max_nodes_per_backward'])} nodes/backward"
            f", peak live {int(gauges.get('tape.peak_live_bytes', 0))} bytes"
        )

    histograms = report.get("metrics", {}).get("histograms", {})
    for name in sorted(histograms):
        h = histograms[name]
        if not h.get("count"):
            continue
        mean = h["sum"] / h["count"]
        lines.append(f"  {name}: n={h['count']}, mean={mean:.3f}")

    # Healthy per-episode events are already aggregated into the
    # executor counters; rendering them individually would drown the
    # report, so only eventful ones (retries, failures) are listed.
    def notable(record: dict) -> bool:
        if record.get("name") != "episode":
            return True
        return record.get("outcome") != "ok" or record.get("attempts", 1) > 1

    events = [r for r in report.get("events", []) if notable(r)]
    if events:
        lines.append("  events:")
        for record in events:
            lines.append(f"    {render_event(record)}")

    if len(lines) == 1:
        lines.append("  (no telemetry records)")
    return "\n".join(lines)
