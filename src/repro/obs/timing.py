"""Shared timing measurement: median + IQR over repeated calls.

This is the one convention for wall-time numbers in the repo — the perf
bench (:mod:`repro.perf.bench`) and the paper-timing table
(:mod:`repro.experiments.timing`) both route through :func:`measure`, so
their numbers are directly comparable.  ``min(timings)`` is deliberately
not offered: the minimum under-reports steady-state cost and is what
``experiments/timing.py`` used to ship.

:class:`TimingStat` subclasses ``float`` (the median), so existing code
and tests that treat measurements as plain floats keep working; the
spread rides along as ``.iqr`` and ``.reps`` attributes.
"""

from __future__ import annotations

import time


class TimingStat(float):
    """A median timing that also carries its inter-quartile range."""

    __slots__ = ("iqr", "reps")

    def __new__(cls, median: float, iqr: float = 0.0, reps: int = 1):
        stat = super().__new__(cls, median)
        stat.iqr = float(iqr)
        stat.reps = int(reps)
        return stat

    def __repr__(self) -> str:
        return f"TimingStat({float(self):.6g}, iqr={self.iqr:.3g}, reps={self.reps})"


def _median(values: list[float]) -> float:
    ordered = sorted(values)
    n = len(ordered)
    mid = n // 2
    if n % 2:
        return ordered[mid]
    return 0.5 * (ordered[mid - 1] + ordered[mid])


def _quartile_spread(values: list[float]) -> float:
    if len(values) < 2:
        return 0.0
    ordered = sorted(values)
    n = len(ordered)
    lower = _median(ordered[: n // 2])
    upper = _median(ordered[(n + 1) // 2:])
    return upper - lower


def measure(fn, reps: int = 3, *, clock=time.perf_counter,
            warmup: bool = False, label: str | None = None) -> TimingStat:
    """Time ``fn`` over ``reps`` calls, returning median + IQR seconds.

    ``warmup`` runs one untimed call first (skip it for functions that
    mutate state, e.g. a training step whose cost changes after the
    first call).  When ``label`` is given and a telemetry session is
    active, each timed call is wrapped in a span of that name.
    """
    from repro import obs

    if reps < 1:
        raise ValueError(f"reps must be >= 1, got {reps}")
    if warmup:
        fn()
    traced = label is not None and obs.enabled()
    timings: list[float] = []
    for i in range(reps):
        if traced:
            with obs.span(label, rep=i):
                start = clock()
                fn()
                timings.append(clock() - start)
        else:
            start = clock()
            fn()
            timings.append(clock() - start)
    return TimingStat(_median(timings), _quartile_spread(timings), reps)
