"""FewNER reproduction: few-shot named entity recognition via meta-learning.

The package implements, from scratch over numpy:

* ``repro.autodiff`` -- reverse-mode autodiff with higher-order gradients;
* ``repro.nn`` -- neural-network layers and optimisers;
* ``repro.crf`` -- differentiable linear-chain CRF;
* ``repro.data`` -- synthetic NER corpora, tag schemes, N-way K-shot episodes;
* ``repro.embeddings`` -- static and simulated contextual embedding providers;
* ``repro.models`` -- the CNN-BiGRU-CRF backbone and context conditioning;
* ``repro.meta`` -- FEWNER and all baseline adaptation methods;
* ``repro.eval`` -- entity-level F1 and episode aggregation;
* ``repro.experiments`` -- harnesses regenerating each table of the paper;
* ``repro.reliability`` -- fault-tolerant training runtime;
* ``repro.serving`` -- hardened inference: validated ingestion,
  deadline-bounded tagging with graceful degradation, circuit-breaker
  serving;
* ``repro.perf`` -- batched fast-path kernels, the episode-parallel
  executor, and the benchmark regression harness;
* ``repro.obs`` -- zero-dependency telemetry: tracing spans, metrics,
  the autodiff tape profiler, and the ``repro obs report`` aggregator.
"""

__version__ = "1.0.0"
