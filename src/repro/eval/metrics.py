"""Entity-level precision/recall/F1 (paper §4.1.1).

A detected entity counts as correct only when both its boundaries and its
type match the ground truth exactly.  For an episode with g gold
entities, r predicted entities and c correct ones:
``F1 = 2c / (g + r)`` (the harmonic mean of c/r and c/g).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Sequence

SpanTuple = tuple[int, int, str]


@dataclass(frozen=True)
class PRF:
    """Precision / recall / F1 with the underlying counts."""

    gold: int
    predicted: int
    correct: int

    @property
    def precision(self) -> float:
        return self.correct / self.predicted if self.predicted else 0.0

    @property
    def recall(self) -> float:
        return self.correct / self.gold if self.gold else 0.0

    @property
    def f1(self) -> float:
        denom = self.gold + self.predicted
        return 2.0 * self.correct / denom if denom else 0.0

    def __add__(self, other: "PRF") -> "PRF":
        return PRF(
            self.gold + other.gold,
            self.predicted + other.predicted,
            self.correct + other.correct,
        )


def span_prf(gold: Sequence[SpanTuple], predicted: Sequence[SpanTuple]) -> PRF:
    """Score one sentence's predictions against gold spans.

    Duplicate spans (which a model cannot legitimately emit under BIO,
    but malformed input might contain) are matched with multiplicity.
    """
    gold_counts = Counter(gold)
    correct = 0
    for span in predicted:
        if gold_counts[span] > 0:
            gold_counts[span] -= 1
            correct += 1
    return PRF(gold=len(gold), predicted=len(predicted), correct=correct)


def episode_f1(
    gold_per_sentence: Sequence[Sequence[SpanTuple]],
    pred_per_sentence: Sequence[Sequence[SpanTuple]],
) -> float:
    """Micro-averaged F1 over all sentences of one testing episode."""
    if len(gold_per_sentence) != len(pred_per_sentence):
        raise ValueError(
            f"{len(gold_per_sentence)} gold vs {len(pred_per_sentence)} "
            "predicted sentence lists"
        )
    total = PRF(0, 0, 0)
    for gold, pred in zip(gold_per_sentence, pred_per_sentence):
        total = total + span_prf(list(gold), list(pred))
    return total.f1
