"""Per-type evaluation reports and error analysis.

Beyond the single micro-F1 the paper reports per episode, a practical
NER toolkit needs per-type precision/recall breakdowns and a boundary /
type error decomposition — this module provides both.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Sequence

from repro.eval.metrics import PRF, SpanTuple, span_prf


@dataclass(frozen=True)
class ErrorBreakdown:
    """Decomposition of prediction errors over a set of sentences.

    * ``correct`` — exact boundary and type match;
    * ``type_error`` — boundaries right, type wrong (the paper's
      FG-NER -> FG-NER negative example);
    * ``boundary_error`` — overlaps a gold mention but boundaries wrong
      (the BN -> CTS negative example);
    * ``spurious`` — no overlap with any gold mention;
    * ``missed`` — gold mentions with no overlapping prediction.
    """

    correct: int
    type_error: int
    boundary_error: int
    spurious: int
    missed: int


def classification_report(
    gold_per_sentence: Sequence[Sequence[SpanTuple]],
    pred_per_sentence: Sequence[Sequence[SpanTuple]],
) -> dict[str, PRF]:
    """Per-type PRF plus micro/macro aggregates.

    Returns a mapping from type name to its :class:`PRF`; the special
    keys ``"micro"`` and ``"macro"`` hold the aggregates (macro is the
    unweighted mean expressed through summed per-type PRFs; its F1 is
    reported as the mean of per-type F1s via the ``macro_f1`` entry of
    :func:`summarize_report`).
    """
    if len(gold_per_sentence) != len(pred_per_sentence):
        raise ValueError("gold/pred sentence counts differ")
    per_type: dict[str, PRF] = defaultdict(lambda: PRF(0, 0, 0))
    micro = PRF(0, 0, 0)
    for gold, pred in zip(gold_per_sentence, pred_per_sentence):
        micro = micro + span_prf(list(gold), list(pred))
        types = {t for _s, _e, t in list(gold) + list(pred)}
        for t in types:
            g = [s for s in gold if s[2] == t]
            p = [s for s in pred if s[2] == t]
            per_type[t] = per_type[t] + span_prf(g, p)
    out = dict(per_type)
    out["micro"] = micro
    return out


def summarize_report(report: dict[str, PRF]) -> dict[str, float]:
    """Scalar summary: micro P/R/F1 and macro-F1 over types."""
    types = [k for k in report if k != "micro"]
    macro_f1 = (
        sum(report[t].f1 for t in types) / len(types) if types else 0.0
    )
    micro = report["micro"]
    return {
        "micro_precision": micro.precision,
        "micro_recall": micro.recall,
        "micro_f1": micro.f1,
        "macro_f1": macro_f1,
        "num_types": len(types),
    }


def error_breakdown(
    gold_per_sentence: Sequence[Sequence[SpanTuple]],
    pred_per_sentence: Sequence[Sequence[SpanTuple]],
) -> ErrorBreakdown:
    """Classify every prediction and gold mention (see class docstring)."""
    correct = type_error = boundary_error = spurious = 0
    missed = 0
    for gold, pred in zip(gold_per_sentence, pred_per_sentence):
        gold = list(gold)
        matched_gold: set[int] = set()
        for p_start, p_end, p_type in pred:
            exact = None
            overlap = None
            for i, (g_start, g_end, g_type) in enumerate(gold):
                if (p_start, p_end) == (g_start, g_end):
                    exact = (i, g_type)
                    break
                if p_start < g_end and g_start < p_end and overlap is None:
                    overlap = i
            if exact is not None:
                i, g_type = exact
                matched_gold.add(i)
                if g_type == p_type:
                    correct += 1
                else:
                    type_error += 1
            elif overlap is not None:
                matched_gold.add(overlap)
                boundary_error += 1
            else:
                spurious += 1
        for i, (g_start, g_end, _g_type) in enumerate(gold):
            if i in matched_gold:
                continue
            touched = any(
                p_start < g_end and g_start < p_end
                for p_start, p_end, _t in pred
            )
            if not touched:
                missed += 1
    return ErrorBreakdown(
        correct=correct,
        type_error=type_error,
        boundary_error=boundary_error,
        spurious=spurious,
        missed=missed,
    )


def render_report(report: dict[str, PRF]) -> str:
    """Format a per-type report as an aligned text table."""
    lines = [f"{'type':<24}{'P':>8}{'R':>8}{'F1':>8}{'gold':>7}{'pred':>7}"]
    for name in sorted(k for k in report if k != "micro"):
        prf = report[name]
        lines.append(
            f"{name:<24}{prf.precision:>8.3f}{prf.recall:>8.3f}"
            f"{prf.f1:>8.3f}{prf.gold:>7}{prf.predicted:>7}"
        )
    micro = report["micro"]
    lines.append(
        f"{'micro':<24}{micro.precision:>8.3f}{micro.recall:>8.3f}"
        f"{micro.f1:>8.3f}{micro.gold:>7}{micro.predicted:>7}"
    )
    return "\n".join(lines)
