"""Qualitative rendering of predictions (Table 6 of the paper)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.data.sentence import Sentence, Span
from repro.eval.metrics import SpanTuple, span_prf


def render_prediction(sentence: Sentence, predicted: list[SpanTuple]) -> str:
    """Render a sentence with predicted mentions bracketed."""
    spans = tuple(Span(s, e, lab) for s, e, lab in predicted)
    return Sentence(sentence.tokens, spans, sentence.domain).pretty()


@dataclass(frozen=True)
class QualitativeExample:
    """One row of a Table 6-style qualitative analysis."""

    adaptation: str
    rendered: str
    gold: tuple[SpanTuple, ...]
    predicted: tuple[SpanTuple, ...]
    correct: bool


def qualitative_row(adaptation: str, sentence: Sentence,
                    predicted: list[SpanTuple]) -> QualitativeExample:
    """Build a qualitative example, marking it correct iff P = R = 1."""
    gold = tuple(s.as_tuple() for s in sentence.spans)
    prf = span_prf(list(gold), predicted)
    correct = prf.correct == prf.gold == prf.predicted
    return QualitativeExample(
        adaptation=adaptation,
        rendered=render_prediction(sentence, predicted),
        gold=gold,
        predicted=tuple(predicted),
        correct=correct,
    )
