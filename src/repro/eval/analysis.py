"""Analysis utilities: OOTV rates, adaptation curves, context diagnostics.

These support the qualitative claims of the paper — e.g. that entity
words are prone to out-of-training-vocabulary tokens (the char-CNN
ablation discussion) and that adaptation improves with inner steps.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.sentence import Dataset
from repro.data.vocab import Vocabulary
from repro.eval.metrics import episode_f1


@dataclass(frozen=True)
class OOTVReport:
    """Out-of-training-vocabulary rates, split by token role."""

    entity_tokens: int
    entity_oov: int
    context_tokens: int
    context_oov: int

    @property
    def entity_oov_rate(self) -> float:
        return self.entity_oov / self.entity_tokens if self.entity_tokens else 0.0

    @property
    def context_oov_rate(self) -> float:
        return self.context_oov / self.context_tokens if self.context_tokens else 0.0


def ootv_report(dataset: Dataset, vocabulary: Vocabulary) -> OOTVReport:
    """Measure OOV rates separately for entity and context tokens.

    The paper attributes the char-CNN's importance to entity tokens
    being disproportionately out-of-vocabulary; this quantifies that on
    any dataset/vocabulary pair.
    """
    entity_tokens = entity_oov = 0
    context_tokens = context_oov = 0
    for sentence in dataset:
        inside = set()
        for span in sentence.spans:
            inside.update(range(span.start, span.end))
        for i, token in enumerate(sentence.tokens):
            oov = token not in vocabulary
            if i in inside:
                entity_tokens += 1
                entity_oov += int(oov)
            else:
                context_tokens += 1
                context_oov += int(oov)
    return OOTVReport(entity_tokens, entity_oov, context_tokens, context_oov)


def adaptation_curve(adapter, episode, step_counts=(0, 1, 2, 4, 8)) -> list[tuple[int, float]]:
    """Episode F1 as a function of test-time inner steps (FEWNER only).

    Realises the quantitative content of the paper's Figure 1: more
    adaptation steps on φ refine the task fit while θ stays fixed.
    """
    from repro.autodiff import no_grad

    gold = [[s.as_tuple() for s in q.spans] for q in episode.query]
    curve = []
    adapter.model.eval()
    for steps in step_counts:
        if steps == 0:
            phi = None
        else:
            phi = adapter._inner_adapt(episode, steps, create_graph=False).detach()
        with no_grad():
            predictions = adapter.model.predict_spans(
                list(episode.query), episode.scheme, phi=phi
            )
        curve.append((steps, episode_f1(gold, predictions)))
    return curve


def context_norms(adapter, episodes) -> np.ndarray:
    """L2 norms of adapted φ across episodes — a dispersion diagnostic.

    Near-zero norms mean adaptation is inert; exploding norms mean the
    inner LR is destabilising (both failure modes observed during the
    calibration study, DESIGN.md §5)."""
    norms = []
    for episode in episodes:
        phi = adapter.adapt_context(episode)
        norms.append(float(np.sqrt((phi.data**2).sum())))
    return np.asarray(norms)
