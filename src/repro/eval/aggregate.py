"""Aggregation of per-episode F1 scores (paper §4.1.1).

The paper reports the mean F1 over 1000 test episodes with a 95 %
confidence interval: ``mean ± 1.96 * std / sqrt(n)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np


@dataclass(frozen=True)
class ConfidenceInterval:
    """Mean with a symmetric half-width at 95 % confidence."""

    mean: float
    half_width: float
    n: int

    @property
    def low(self) -> float:
        return self.mean - self.half_width

    @property
    def high(self) -> float:
        return self.mean + self.half_width

    def overlaps(self, other: "ConfidenceInterval") -> bool:
        return self.low <= other.high and other.low <= self.high

    def __str__(self) -> str:
        return f"{100 * self.mean:.2f} ± {100 * self.half_width:.2f}%"


def aggregate_f1(scores: Sequence[float], z: float = 1.96) -> ConfidenceInterval:
    """Mean ± z * sem over episode F1 scores."""
    arr = np.asarray(list(scores), dtype=float)
    if arr.size == 0:
        raise ValueError("no episode scores to aggregate")
    mean = float(arr.mean())
    sem = float(arr.std(ddof=0) / np.sqrt(arr.size)) if arr.size > 1 else 0.0
    return ConfidenceInterval(mean=mean, half_width=z * sem, n=arr.size)


def format_mean_ci(ci: ConfidenceInterval) -> str:
    """Render like the paper's tables, e.g. ``23.74 ± 0.65%``."""
    return str(ci)


def relative_improvement(ours: float, baseline: float) -> float:
    """Relative F1 improvement in percent, as quoted in §4.2.2."""
    if baseline <= 0:
        raise ValueError("baseline F1 must be positive")
    return 100.0 * (ours - baseline) / baseline


def paired_bootstrap(scores_a: Sequence[float], scores_b: Sequence[float],
                     n_resamples: int = 2000, seed: int = 0) -> float:
    """Paired bootstrap test over per-episode scores.

    Both methods must have been evaluated on the *same* episodes (the
    fixed-seed protocol of §4.2.1 guarantees this).  Returns the
    probability that method A is **not** better than method B under
    resampling — a one-sided p-value-style quantity; small values mean
    A's advantage is consistent across episodes.
    """
    a = np.asarray(list(scores_a), dtype=float)
    b = np.asarray(list(scores_b), dtype=float)
    if a.shape != b.shape or a.size == 0:
        raise ValueError("score lists must be equal-length and non-empty")
    if n_resamples < 1:
        raise ValueError("n_resamples must be >= 1")
    rng = np.random.default_rng(seed)
    diffs = a - b
    n = diffs.size
    wins = 0
    for _ in range(n_resamples):
        sample = diffs[rng.integers(0, n, size=n)]
        if sample.mean() > 0:
            wins += 1
    return 1.0 - wins / n_resamples
