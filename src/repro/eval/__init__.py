"""Evaluation: entity-level F1 and episode-level aggregation."""

from repro.eval.metrics import PRF, span_prf, episode_f1
from repro.eval.aggregate import (
    ConfidenceInterval,
    aggregate_f1,
    format_mean_ci,
    paired_bootstrap,
    relative_improvement,
)
from repro.eval.qualitative import render_prediction, qualitative_row
from repro.eval.report import (
    classification_report,
    summarize_report,
    error_breakdown,
    render_report,
    ErrorBreakdown,
)
from repro.eval.analysis import OOTVReport, ootv_report, adaptation_curve, context_norms

__all__ = [
    "PRF",
    "span_prf",
    "episode_f1",
    "ConfidenceInterval",
    "aggregate_f1",
    "format_mean_ci",
    "paired_bootstrap",
    "relative_improvement",
    "render_prediction",
    "qualitative_row",
    "classification_report",
    "summarize_report",
    "error_breakdown",
    "render_report",
    "ErrorBreakdown",
    "OOTVReport",
    "ootv_report",
    "adaptation_curve",
    "context_norms",
]
