"""Deadline-aware CRF decoding shared by the backbone and LM baselines.

:func:`decode_emissions_within` walks a batch of per-sentence emission
scores and picks, per sentence, the richest decode the remaining budget
allows:

* full Viterbi while the deadline has budget and the caller's circuit
  breaker permits it (``allow_viterbi``);
* the greedy :meth:`~repro.crf.LinearChainCRF.argmax_decode` once the
  budget is spent, the breaker is open, or Viterbi raised.

Every sentence gets *some* tag sequence — degradation, never an
exception (a :class:`~repro.reliability.faults.SimulatedCrash` is a
``BaseException`` and still propagates, by design).  The per-sentence
status strings tell the serving layer what happened so it can set
response flags and feed its circuit breaker.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.crf import LinearChainCRF

#: Viterbi completed within budget.
FULL = "full"
#: Viterbi completed but the deadline expired while it ran.
OVERRUN = "overrun"
#: Budget was already spent; greedy decode used.
DEGRADED_DEADLINE = "degraded-deadline"
#: Viterbi raised; greedy decode used.
DEGRADED_ERROR = "degraded-error"
#: Caller's circuit breaker is open; greedy decode used.
DEGRADED_BREAKER = "degraded-breaker"

#: Statuses that count as degraded answers.
DEGRADED_STATUSES = frozenset(
    {DEGRADED_DEADLINE, DEGRADED_ERROR, DEGRADED_BREAKER}
)
#: Statuses a circuit breaker should count as failures of the full path.
FAILURE_STATUSES = frozenset({OVERRUN, DEGRADED_ERROR})


def decode_emissions_within(
    crf: LinearChainCRF,
    emissions,
    deadline=None,
    on_sentence: Callable[[int], None] | None = None,
    allow_viterbi: bool = True,
) -> tuple[list[list[int]], list[str]]:
    """Decode each ``(L, T)`` emission matrix; returns ``(paths, statuses)``.

    ``deadline`` is any object with an ``expired`` property (normally a
    :class:`repro.serving.Deadline`); ``on_sentence(i)`` is a test hook
    run before each Viterbi attempt — fault injectors use it to raise or
    to advance a manual clock, simulating a failing or slow decoder.

    When no deadline or hook is in play and Viterbi is allowed, the whole
    batch goes through the vectorised kernel in one shot (statuses all
    ``FULL``) — bit-identical paths, no per-sentence Python loop.
    """
    from repro.perf.fastpath import batched_decode_enabled

    emissions = list(emissions)
    if (
        deadline is None
        and on_sentence is None
        and allow_viterbi
        and emissions
        and batched_decode_enabled()
    ):
        arrays = [
            np.asarray(e.data if hasattr(e, "data") else e) for e in emissions
        ]
        lengths = [a.shape[0] for a in arrays]
        max_len, num_tags = max(lengths), arrays[0].shape[1]
        padded = np.zeros((len(arrays), max_len, num_tags))
        mask = np.zeros((len(arrays), max_len))
        for i, a in enumerate(arrays):
            padded[i, : lengths[i], :] = a
            mask[i, : lengths[i]] = 1.0
        paths = crf.viterbi_decode_batch(padded, mask)
        return paths, [FULL] * len(paths)

    paths: list[list[int]] = []
    statuses: list[str] = []
    for i, e in enumerate(emissions):
        data = np.asarray(e.data if hasattr(e, "data") else e)
        path: list[int] | None = None
        if not allow_viterbi:
            status = DEGRADED_BREAKER
        elif deadline is not None and deadline.expired:
            status = DEGRADED_DEADLINE
        else:
            try:
                if on_sentence is not None:
                    on_sentence(i)
                path = crf.viterbi_decode(data)
                status = (
                    OVERRUN
                    if deadline is not None and deadline.expired
                    else FULL
                )
            except Exception:
                path, status = None, DEGRADED_ERROR
        if path is None:
            path = crf.argmax_decode(data)
        paths.append(path)
        statuses.append(status)
    return paths, statuses
