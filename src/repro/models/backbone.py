"""The CNN-BiGRU-CRF sequence labeling backbone (paper §3.2.2).

All parameters of this module constitute θ, the task-independent part.
The task-specific context vector φ is *not* a parameter of the module: it
is created per task (initialised to zeros), injected through one of four
conditioning sites (see :class:`BackboneConfig.conditioning` — the
linear emission head by default, FiLM/concatenation as the paper's
methods B/A), and adapted by inner-loop gradient descent.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.autodiff.tensor import Tensor, concatenate, matmul, reshape, zeros
from repro.crf import LinearChainCRF, bio_start_mask, bio_transition_mask
from repro.data.sentence import Sentence
from repro.data.tags import TagScheme
from repro.data.vocab import CharVocabulary, Vocabulary
from repro.models.batch import Batch, encode_batch
from repro.nn import (
    BiGRU,
    BiLSTM,
    CharCNN,
    ConcatConditioner,
    Dropout,
    Embedding,
    FiLM,
    Linear,
    TransformerEncoder,
)
from repro.nn.module import Module


@dataclass(frozen=True)
class BackboneConfig:
    """Hyper-parameters of the backbone.

    Defaults are scaled down from the paper (word 300-d GloVe, 150 char
    filters, GRU hidden 128, φ 256-d) so the full reproduction runs on
    CPU; the paper's sizes remain valid values.
    """

    word_dim: int = 24
    char_dim: int = 12
    char_filters: int = 24
    char_widths: tuple[int, ...] = (2, 3, 4)
    hidden: int = 24
    dropout: float = 0.1
    context_dim: int = 16
    #: Where φ conditions the backbone:
    #: * ``"film"``   — FiLM on the BiGRU output (paper's method B);
    #: * ``"concat"`` — concatenation at the BiGRU output (method A);
    #: * ``"film+bias"`` — method B plus a φ-generated per-tag emission
    #:   bias;
    #: * ``"head"``  — φ is a zero-initialised linear emission head:
    #:   ``emissions += h @ reshape(φ, (2H, T))``.  One inner gradient
    #:   step sets ``Δφ ∝ -Σ_t h(t) δ(t)^T`` over the support tokens —
    #:   prototype-like class templates — so a couple of steps suffice to
    #:   bind the task's N concrete types to the abstract way slots.
    #:   This is the default at CPU scale: the FiLM sites (paper) need
    #:   far more meta-training before the φ-gradient carries binding
    #:   information, while the head site binds from the first episode
    #:   (see DESIGN.md §"conditioning sites").  For "head" the context
    #:   dimension is ``2 * hidden * num_tags`` and ``context_dim`` is
    #:   ignored.
    conditioning: str = "head"
    #: Context encoder: ``"bigru"`` (the paper's choice, §3.2.2),
    #: ``"bilstm"`` (the classic BiLSTM-CRF alternative) or
    #: ``"transformer"`` (from scratch — the configuration §3.2.2 argues
    #: underperforms recurrent encoders on small corpora).
    encoder: str = "bigru"
    use_char_cnn: bool = True
    max_chars: int = 12

    def __post_init__(self):
        if self.conditioning not in ("film", "concat", "film+bias", "head"):
            raise ValueError(
                "conditioning must be 'film', 'concat', 'film+bias' or "
                f"'head', got {self.conditioning!r}"
            )
        if self.char_filters % len(self.char_widths) != 0:
            raise ValueError("char_filters must divide evenly across widths")
        if self.encoder not in ("bigru", "bilstm", "transformer"):
            raise ValueError(
                "encoder must be 'bigru', 'bilstm' or 'transformer', "
                f"got {self.encoder!r}"
            )


class CNNBiGRUCRF(Module):
    """Backbone θ: char-CNN + word embeddings -> BiGRU -> (FiLM) -> CRF."""

    def __init__(
        self,
        word_vocab: Vocabulary,
        char_vocab: CharVocabulary,
        num_tags: int,
        config: BackboneConfig,
        rng: np.random.Generator,
        pretrained_word: np.ndarray | None = None,
        tag_names: list[str] | None = None,
    ):
        super().__init__()
        self.config = config
        self.word_vocab = word_vocab
        self.char_vocab = char_vocab
        self.num_tags = num_tags

        self.word_embedding = Embedding(
            len(word_vocab), config.word_dim, rng,
            padding_idx=word_vocab.pad_index, weight=pretrained_word,
        )
        input_dim = config.word_dim
        if config.use_char_cnn:
            self.char_cnn = CharCNN(
                len(char_vocab), config.char_dim, config.char_filters, rng,
                widths=config.char_widths, padding_idx=char_vocab.pad_index,
            )
            input_dim += config.char_filters
        self.input_dropout = Dropout(config.dropout, rng)
        encoder_cls = {
            "bigru": BiGRU,
            "bilstm": BiLSTM,
            "transformer": TransformerEncoder,
        }[config.encoder]
        self.encoder = encoder_cls(input_dim, config.hidden, rng)
        feature_dim = self.encoder.output_dim
        self._feature_dim = feature_dim
        if config.context_dim > 0:
            if config.conditioning == "concat":
                self.conditioner = ConcatConditioner(
                    config.context_dim, feature_dim, rng
                )
            elif config.conditioning in ("film", "film+bias"):
                self.conditioner = FiLM(config.context_dim, feature_dim, rng)
            if config.conditioning == "film+bias":
                self.bias_generator = Linear(config.context_dim, num_tags, rng)
        self.output_dropout = Dropout(config.dropout, rng)
        self.projection = Linear(feature_dim, num_tags, rng)
        transition_mask = start_mask = None
        if tag_names is not None:
            if len(tag_names) != num_tags:
                raise ValueError(
                    f"{len(tag_names)} tag names for {num_tags} tags"
                )
            transition_mask = bio_transition_mask(tag_names)
            start_mask = bio_start_mask(tag_names)
        self.crf = LinearChainCRF(num_tags, rng, transition_mask, start_mask)

    # ------------------------------------------------------------------
    @property
    def context_size(self) -> int:
        """Dimensionality of the task-specific context vector φ."""
        if self.config.conditioning == "head":
            return self._feature_dim * self.num_tags
        return self.config.context_dim

    def new_context(self) -> Tensor:
        """A fresh task-specific context vector φ = 0 (paper §3.2.4)."""
        return zeros((self.context_size,), requires_grad=True)

    # ------------------------------------------------------------------
    def encoder_features(self, batch: Batch) -> Tensor:
        """The φ-independent slice of :meth:`features`.

        Embeddings, char-CNN and the sequence encoder — everything below
        the point where the task context enters.  During adaptation θ is
        frozen, so this pass is constant across inner steps and callers
        may compute it once and replay it via the ``base`` argument of
        :meth:`features` / the loss methods (only valid while dropout is
        inactive; see ``repro.perf.fastpath``).
        """
        b, length = batch.word_ids.shape
        parts = [self.word_embedding(batch.word_ids)]
        if self.config.use_char_cnn:
            flat_chars = batch.char_ids.reshape(b * length, -1)
            char_feats = self.char_cnn(flat_chars)
            parts.append(
                reshape(char_feats, (b, length, self.config.char_filters))
            )
        x = concatenate(parts, axis=-1) if len(parts) > 1 else parts[0]
        x = self.input_dropout(x)
        return self.encoder(x, batch.mask)

    def features(self, batch: Batch, phi: Tensor | None = None,
                 base: Tensor | None = None) -> Tensor:
        """Contextual features ``(B, L, 2H)`` for a padded batch.

        ``base`` replays a precomputed :meth:`encoder_features` result
        instead of re-running the encoder stack.
        """
        h = base if base is not None else self.encoder_features(batch)
        if phi is not None and self.config.conditioning != "head":
            if self.config.context_dim == 0:
                raise ValueError("model was built with context_dim=0")
            h = self.conditioner(h, phi)
        return self.output_dropout(h)

    def emission_scores(self, batch: Batch, phi: Tensor | None = None,
                        base: Tensor | None = None) -> Tensor:
        """Padded emission scores ``(B, L, T)`` under context φ."""
        h = self.features(batch, phi, base=base)
        scores = matmul(h, self.projection.weight) + self.projection.bias
        if phi is not None:
            if self.config.conditioning == "film+bias":
                scores = scores + self.bias_generator(phi)
            elif self.config.conditioning == "head":
                if phi.size != self._feature_dim * self.num_tags:
                    raise ValueError(
                        f"head context must have {self._feature_dim * self.num_tags} "
                        f"entries, got {phi.size}"
                    )
                head = phi.reshape((self._feature_dim, self.num_tags))
                scores = scores + matmul(h, head)
        return scores

    def emissions(self, batch: Batch, phi: Tensor | None = None) -> list[Tensor]:
        """Per-sentence emission scores, unpadded: list of ``(L_i, T)``."""
        scores = self.emission_scores(batch, phi)
        return [scores[i, : batch.lengths[i], :] for i in range(batch.size)]

    def loss(self, batch: Batch, phi: Tensor | None = None,
             base: Tensor | None = None) -> Tensor:
        """Mean CRF negative log-likelihood over the batch.

        Uses the batched padded forward algorithm so the graph size grows
        with sentence length, not with batch size.
        """
        if batch.tag_ids is None:
            raise ValueError("batch was encoded without gold tags")
        scores = self.emission_scores(batch, phi, base=base)
        b, max_len = batch.word_ids.shape
        padded_tags = np.zeros((b, max_len), dtype=np.intp)
        for i, tags in enumerate(batch.tag_ids):
            padded_tags[i, : len(tags)] = tags
        return self.crf.batch_nll_padded(scores, padded_tags, batch.mask)

    def token_ce_loss(self, batch: Batch, phi: Tensor | None = None,
                      balanced: bool = True,
                      base: Tensor | None = None) -> Tensor:
        """Token-level cross-entropy over emission scores.

        Used as the inner-loop adaptation surrogate: unlike the CRF NLL —
        which a calibrated-but-undecided model satisfies by spreading tag
        mass — per-token CE forces margins, so a few φ gradient steps on
        the support set commit the emissions to the task's type binding.

        With ``balanced`` each token is weighted by the inverse frequency
        of its gold tag in the batch, so the (dominant) O tokens do not
        drown out the handful of entity tokens that carry the binding
        evidence.
        """
        from repro.autodiff.functional import log_softmax

        if batch.tag_ids is None:
            raise ValueError("batch was encoded without gold tags")
        scores = self.emission_scores(batch, phi, base=base)
        b, max_len = batch.word_ids.shape
        log_probs = log_softmax(scores, axis=-1)
        padded_tags = np.zeros((b, max_len), dtype=np.intp)
        for i, tags in enumerate(batch.tag_ids):
            padded_tags[i, : len(tags)] = tags
        rows = np.arange(b)[:, None]
        cols = np.arange(max_len)[None, :]
        picked = log_probs[rows, cols, padded_tags]  # (B, L)
        weights = batch.mask.copy()
        if balanced:
            counts = np.zeros(self.num_tags)
            flat_tags = padded_tags[batch.mask > 0]
            for tag in flat_tags:
                counts[tag] += 1
            inv = np.zeros_like(weights)
            inv[batch.mask > 0] = 1.0 / counts[flat_tags]
            weights = inv
        total = float(weights.sum())
        weighted = picked * Tensor(weights)
        return (weighted.sum() * Tensor(np.array(-1.0))) / Tensor(np.array(total))

    # ------------------------------------------------------------------
    def encode(self, sentences: list[Sentence],
               scheme: TagScheme | None = None) -> Batch:
        """Encode sentences with this model's vocabularies."""
        return encode_batch(
            sentences, self.word_vocab, self.char_vocab, scheme,
            max_chars=self.config.max_chars,
        )

    def decode(self, sentences: list[Sentence],
               phi: Tensor | None = None) -> list[list[int]]:
        """Viterbi tag sequences for raw sentences (``[]`` for ``[]``).

        Uses the batch-vectorised Viterbi kernel (bit-identical to the
        per-sentence recursion) unless
        :func:`repro.perf.fastpath.legacy_kernels` is active.
        """
        from repro.perf.fastpath import batched_decode_enabled

        if not sentences:
            return []
        was_training = self.training
        self.eval()
        try:
            batch = self.encode(sentences)
            if batched_decode_enabled():
                scores = self.emission_scores(batch, phi)
                return self.crf.viterbi_decode_batch(scores.data, batch.mask)
            emissions = self.emissions(batch, phi)
            return [self.crf.viterbi_decode(e.data) for e in emissions]
        finally:
            self.train(was_training)

    def decode_within(
        self,
        sentences: list[Sentence],
        phi: Tensor | None = None,
        deadline=None,
        on_sentence=None,
        allow_viterbi: bool = True,
    ) -> tuple[list[list[int]], list[str]]:
        """Deadline-aware batched decode: ``(tag_sequences, statuses)``.

        Emissions are computed once for the whole batch (the floor cost of
        any answer); the per-sentence Viterbi pass then consults
        ``deadline`` — any object with an ``expired`` property, normally a
        :class:`repro.serving.Deadline` on a monotonic clock — and drops
        to the greedy :meth:`LinearChainCRF.argmax_decode` once the budget
        is spent, the caller's breaker is open (``allow_viterbi=False``)
        or Viterbi raises.  See :mod:`repro.models.decoding` for the
        status vocabulary and ``on_sentence`` fault-injection hook.
        """
        from repro.models.decoding import decode_emissions_within

        if not sentences:
            return [], []
        was_training = self.training
        self.eval()
        try:
            batch = self.encode(sentences)
            emissions = self.emissions(batch, phi)
        finally:
            self.train(was_training)
        return decode_emissions_within(
            self.crf, emissions, deadline=deadline,
            on_sentence=on_sentence, allow_viterbi=allow_viterbi,
        )

    def predict_spans(self, sentences: list[Sentence], scheme: TagScheme,
                      phi: Tensor | None = None) -> list[list[tuple[int, int, str]]]:
        """Predicted entity spans for each sentence (``[]`` for ``[]``)."""
        return [
            scheme.decode(tag_ids)
            for tag_ids in self.decode(sentences, phi)
        ]
