"""Batch encoding of sentences into padded id arrays."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.sentence import Sentence
from repro.data.tags import TagScheme
from repro.data.vocab import CharVocabulary, Vocabulary


@dataclass(frozen=True)
class Batch:
    """Padded arrays for a batch of sentences.

    ``word_ids`` and ``mask`` are ``(B, L)``; ``char_ids`` is
    ``(B, L, C)``; ``tag_ids`` is a list of per-sentence integer arrays
    (unpadded, aligned with true lengths); ``lengths`` the true lengths.
    """

    word_ids: np.ndarray
    char_ids: np.ndarray
    mask: np.ndarray
    lengths: tuple[int, ...]
    tag_ids: tuple[np.ndarray, ...] | None

    @property
    def size(self) -> int:
        return self.word_ids.shape[0]


def encode_batch(
    sentences: list[Sentence],
    word_vocab: Vocabulary,
    char_vocab: CharVocabulary,
    scheme: TagScheme | None = None,
    max_chars: int = 12,
) -> Batch:
    """Encode sentences (and, if a scheme is given, their gold tags)."""
    if not sentences:
        raise ValueError(
            "cannot encode an empty batch: encode_batch was called with no "
            "sentences — callers that may legitimately receive empty input "
            "(decode/predict_spans, the serving layer) must short-circuit "
            "to an empty result before encoding"
        )
    lengths = tuple(len(s) for s in sentences)
    max_len = max(lengths)
    batch = len(sentences)
    word_ids = np.zeros((batch, max_len), dtype=np.intp)
    char_ids = np.zeros((batch, max_len, max_chars), dtype=np.intp)
    mask = np.zeros((batch, max_len))
    for i, sent in enumerate(sentences):
        word_ids[i, : len(sent)] = word_vocab.encode(sent.tokens)
        char_ids[i, : len(sent)] = char_vocab.encode_sentence(sent.tokens, max_chars)
        mask[i, : len(sent)] = 1.0
    tags = None
    if scheme is not None:
        tags = tuple(
            np.asarray(
                scheme.encode([sp.as_tuple() for sp in sent.spans], len(sent)),
                dtype=np.intp,
            )
            for sent in sentences
        )
    return Batch(word_ids, char_ids, mask, lengths, tags)
