"""Models: the CNN-BiGRU-CRF backbone (θ), context conditioning (φ), and
the frozen-LM + CRF stacked baselines."""

from repro.models.batch import Batch, encode_batch
from repro.models.backbone import BackboneConfig, CNNBiGRUCRF
from repro.models.decoding import decode_emissions_within
from repro.models.lm_crf import LMTagger

__all__ = [
    "Batch",
    "encode_batch",
    "BackboneConfig",
    "CNNBiGRUCRF",
    "LMTagger",
    "decode_emissions_within",
]
