"""Frozen-LM + CRF stacked baselines (Tables 2-4, "dynamic" block).

A simulated pretrained contextual embedder provides frozen features; a
trainable linear projection + CRF sit on top.  Mirroring the paper's
setup, downstream training (and test-time fine-tuning) touches only the
projection and CRF — the LM stays frozen.
"""

from __future__ import annotations

import numpy as np

from repro.autodiff.tensor import Tensor, matmul
from repro.crf import LinearChainCRF, bio_start_mask, bio_transition_mask
from repro.data.sentence import Sentence
from repro.data.tags import TagScheme
from repro.embeddings.contextual import SimulatedContextualEmbedder
from repro.nn import Linear
from repro.nn.module import Module


class LMTagger(Module):
    """Frozen contextual embedder + trainable projection + CRF."""

    def __init__(self, embedder: SimulatedContextualEmbedder, num_tags: int,
                 rng: np.random.Generator, tag_names: list[str] | None = None):
        super().__init__()
        self.embedder = embedder
        self.num_tags = num_tags
        self.projection = Linear(embedder.output_dim, num_tags, rng)
        transition_mask = start_mask = None
        if tag_names is not None:
            transition_mask = bio_transition_mask(tag_names)
            start_mask = bio_start_mask(tag_names)
        self.crf = LinearChainCRF(num_tags, rng, transition_mask, start_mask)
        self._feature_cache: dict[tuple[str, ...], np.ndarray] = {}

    def _features(self, sentence: Sentence) -> Tensor:
        key = sentence.tokens
        feats = self._feature_cache.get(key)
        if feats is None:
            feats = self.embedder.encode(sentence.tokens)
            self._feature_cache[key] = feats
        return Tensor(feats)

    def emissions(self, sentences: list[Sentence]) -> list[Tensor]:
        return [
            matmul(self._features(s), self.projection.weight) + self.projection.bias
            for s in sentences
        ]

    def loss(self, sentences: list[Sentence], scheme: TagScheme) -> Tensor:
        tags = [
            np.asarray(
                scheme.encode([sp.as_tuple() for sp in s.spans], len(s)),
                dtype=np.intp,
            )
            for s in sentences
        ]
        return self.crf.batch_nll(self.emissions(sentences), tags)

    def decode(self, sentences: list[Sentence]) -> list[list[int]]:
        """Viterbi tag sequences (``[]`` for an empty batch).

        Routes through the batched kernel via
        :func:`repro.models.decoding.decode_emissions_within` when the
        fast decode path is on; paths are bit-identical either way.
        """
        from repro.models.decoding import decode_emissions_within

        if not sentences:
            return []
        paths, _statuses = decode_emissions_within(
            self.crf, self.emissions(sentences)
        )
        return paths

    def decode_within(
        self,
        sentences: list[Sentence],
        phi=None,
        deadline=None,
        on_sentence=None,
        allow_viterbi: bool = True,
    ) -> tuple[list[list[int]], list[str]]:
        """Deadline-aware decode mirroring ``CNNBiGRUCRF.decode_within``.

        ``phi`` is accepted for interface parity and ignored — the LM
        baseline has no task context vector.
        """
        from repro.models.decoding import decode_emissions_within

        if not sentences:
            return [], []
        emissions = self.emissions(sentences)
        return decode_emissions_within(
            self.crf, emissions, deadline=deadline,
            on_sentence=on_sentence, allow_viterbi=allow_viterbi,
        )

    def predict_spans(self, sentences: list[Sentence],
                      scheme: TagScheme) -> list[list[tuple[int, int, str]]]:
        return [scheme.decode(ids) for ids in self.decode(sentences)]
