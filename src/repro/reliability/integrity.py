"""Shared file-integrity primitives: SHA-256, sidecars, quarantine.

Every durable artifact in the runtime — training checkpoints
(:mod:`repro.reliability.checkpoint`) and the persistent
embedding/adaptation store (:mod:`repro.store`) — protects itself the
same way:

* a **content digest** (:func:`file_sha256` / :func:`bytes_sha256`)
  proves the bytes read are the bytes written;
* an optional **sidecar** (``<path>.sha256``, ``sha256sum`` format,
  written atomically by :func:`write_checksum_sidecar`) catches
  whole-file corruption the inner format cannot — e.g. a torn copy that
  replaced the file with *valid but wrong* bytes;
* a damaged file is **quarantined** (:func:`quarantine_file`): renamed
  ``*.quarantined`` so rotation and future loads skip it while the
  bytes stay on disk for post-mortems.

These helpers raise only through the caller-supplied error class, so
checkpoints keep raising :class:`~repro.nn.serialization.CheckpointError`
and the store keeps raising its own :class:`~repro.store.StoreError`.
"""

from __future__ import annotations

import hashlib
import os
import tempfile

#: Integrity sidecar written next to a protected file (sha256sum format).
CHECKSUM_SUFFIX = ".sha256"
#: Suffix a damaged file is renamed to when quarantined.
QUARANTINE_SUFFIX = ".quarantined"


class IntegrityError(RuntimeError):
    """A file failed its integrity check (default error class)."""


def bytes_sha256(data: bytes) -> str:
    """Hex SHA-256 of an in-memory byte string."""
    return hashlib.sha256(data).hexdigest()


def file_sha256(path: str) -> str:
    """Hex SHA-256 of a file, streamed in 1 MiB blocks."""
    digest = hashlib.sha256()
    with open(path, "rb") as fh:
        for block in iter(lambda: fh.read(1 << 20), b""):
            digest.update(block)
    return digest.hexdigest()


def write_checksum_sidecar(path: str) -> str:
    """Write ``path``'s sha256 sidecar atomically; returns the sidecar path.

    The sidecar is written to a temp file in the same directory, fsynced
    and renamed into place, so a crash can only ever leave the *old*
    sidecar (or none) — never a torn one.
    """
    line = f"{file_sha256(path)}  {os.path.basename(path)}\n"
    directory = os.path.dirname(os.path.abspath(path))
    fd, tmp = tempfile.mkstemp(dir=directory, prefix=".tmp-sha256-")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            fh.write(line)
            fh.flush()
            os.fsync(fh.fileno())
        sidecar = path + CHECKSUM_SUFFIX
        os.replace(tmp, sidecar)
        return sidecar
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def verify_checksum_sidecar(path: str, error: type[Exception] = IntegrityError,
                            kind: str = "file") -> None:
    """Check ``path`` against its sha256 sidecar, if one exists.

    Raises ``error`` on mismatch or an unreadable sidecar.  A *missing*
    sidecar is accepted silently — files written before the sidecar
    existed (or whose sidecar write was cut short by a crash) still
    load; format-level damage checks remain the floor.
    """
    sidecar = path + CHECKSUM_SUFFIX
    if not os.path.exists(sidecar):
        return
    try:
        with open(sidecar, "r", encoding="utf-8") as fh:
            expected = fh.read().split()[0]
    except (OSError, IndexError) as exc:
        raise error(
            f"checksum sidecar {sidecar!r} is unreadable "
            f"({type(exc).__name__}: {exc})"
        ) from exc
    actual = file_sha256(path)
    if actual != expected:
        raise error(
            f"{kind} {path!r} fails its checksum "
            f"(sha256 {actual[:12]}… != recorded {expected[:12]}…); "
            f"the file was corrupted after it was written"
        )


def quarantine_file(path: str, with_sidecar: bool = True) -> list[str]:
    """Rename a damaged file (and optionally its sidecar) out of rotation.

    Returns the list of paths actually renamed.  Missing files are
    skipped silently — quarantining is best-effort cleanup on an
    already-failing path and must never raise.
    """
    victims = [path]
    if with_sidecar:
        victims.append(path + CHECKSUM_SUFFIX)
    renamed = []
    for victim in victims:
        try:
            os.replace(victim, victim + QUARANTINE_SUFFIX)
            renamed.append(victim)
        except OSError:
            pass
    return renamed
