"""Crash-safe full training state: parameters, optimizer, RNG, history.

A :class:`TrainingCheckpoint` captures everything ``Adapter.fit`` needs
to continue a killed run bit-for-bit: the module ``state_dict``, the
optimizer's moment buffers and scalars, the numpy ``Generator`` states
of the adapter and the episode sampler, the completed iteration count
and the loss history.  It is stored as one ``.npz`` archive — arrays
under ``module/<name>`` and ``optim/<slot>/<index>`` keys, everything
scalar in a JSON blob — written atomically via
:func:`repro.nn.serialization.atomic_savez`.

:class:`CheckpointStore` manages a directory of such checkpoints with
bounded retention (keep the last K) and a damage-tolerant
:meth:`~CheckpointStore.load_latest` that silently falls back to the
newest *readable* checkpoint if the most recent write was truncated by
a crash.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field

import numpy as np

from repro.nn.serialization import CheckpointError, atomic_savez
from repro.reliability.integrity import (
    CHECKSUM_SUFFIX,
    QUARANTINE_SUFFIX,
    verify_checksum_sidecar,
    write_checksum_sidecar as _write_checksum,
)

_META_KEY = "__repro_meta__"
_FORMAT = 1


def verify_checksum(path: str) -> None:
    """Check ``path`` against its sha256 sidecar, if one exists.

    Raises :class:`CheckpointError` on mismatch or an unreadable
    sidecar.  A *missing* sidecar is accepted silently — checkpoints
    written before the sidecar existed (or whose sidecar write was cut
    short by a crash) still load; the archive-level damage checks in
    :meth:`TrainingCheckpoint.load` remain the floor.  The heavy lifting
    lives in :mod:`repro.reliability.integrity`, which the persistent
    store (:mod:`repro.store`) shares.
    """
    verify_checksum_sidecar(path, error=CheckpointError, kind="checkpoint")


@dataclass
class TrainingCheckpoint:
    """Complete mid-training state of one ``fit`` run."""

    iteration: int
    module_state: dict[str, np.ndarray]
    optimizer_state: dict = field(default_factory=dict)
    rng_state: dict = field(default_factory=dict)
    loss_history: list[float] = field(default_factory=list)
    metadata: dict = field(default_factory=dict)

    # ------------------------------------------------------------------
    def save(self, path: str) -> None:
        """Write the checkpoint atomically to ``path``."""
        payload: dict[str, np.ndarray] = {}
        for name, array in self.module_state.items():
            payload[f"module/{name}"] = np.asarray(array)
        optim_meta: dict = {}
        if self.optimizer_state:
            optim_meta = {
                "kind": self.optimizer_state["kind"],
                "scalars": self.optimizer_state["scalars"],
                "slots": {},
            }
            for slot, arrays in self.optimizer_state["arrays"].items():
                optim_meta["slots"][slot] = len(arrays)
                for i, array in enumerate(arrays):
                    payload[f"optim/{slot}/{i}"] = np.asarray(array)
        meta = {
            "format": _FORMAT,
            "iteration": self.iteration,
            "loss_history": [float(x) for x in self.loss_history],
            "rng_state": self.rng_state,
            "optimizer": optim_meta,
            "metadata": self.metadata,
        }
        blob = json.dumps(meta).encode("utf-8")
        payload[_META_KEY] = np.frombuffer(blob, dtype=np.uint8)
        atomic_savez(path, payload)
        _write_checksum(path)
        from repro import obs

        obs.count("checkpoint.saves")
        obs.emit("checkpoint.saved", path=str(path), iteration=self.iteration)

    # ------------------------------------------------------------------
    @classmethod
    def load(cls, path: str, verify: bool = True) -> "TrainingCheckpoint":
        """Read a checkpoint; raises :class:`CheckpointError` on damage.

        With ``verify`` (the default) the file is first checked against
        its sha256 sidecar, which catches corruption the archive format
        cannot — e.g. a torn copy that replaced the file with *valid but
        wrong* bytes.
        """
        import zipfile

        if verify:
            verify_checksum(path)
        try:
            with np.load(path) as archive:
                if _META_KEY not in archive.files:
                    raise CheckpointError(
                        f"checkpoint {path!r} has no metadata record; "
                        f"not a training checkpoint"
                    )
                meta = json.loads(archive[_META_KEY].tobytes().decode("utf-8"))
                module_state = {
                    k[len("module/"):]: archive[k]
                    for k in archive.files if k.startswith("module/")
                }
                optim_meta = meta.get("optimizer") or {}
                optimizer_state: dict = {}
                if optim_meta:
                    optimizer_state = {
                        "kind": optim_meta["kind"],
                        "scalars": optim_meta["scalars"],
                        "arrays": {
                            slot: [archive[f"optim/{slot}/{i}"]
                                   for i in range(count)]
                            for slot, count in optim_meta["slots"].items()
                        },
                    }
        except FileNotFoundError:
            raise
        except CheckpointError:
            raise
        except (zipfile.BadZipFile, EOFError, OSError, KeyError, ValueError,
                json.JSONDecodeError) as exc:
            raise CheckpointError(
                f"training checkpoint {path!r} is corrupt or truncated "
                f"({type(exc).__name__}: {exc})"
            ) from exc
        from repro import obs

        obs.count("checkpoint.loads")
        obs.emit("checkpoint.loaded", path=str(path),
                 iteration=int(meta["iteration"]))
        return cls(
            iteration=int(meta["iteration"]),
            module_state=module_state,
            optimizer_state=optimizer_state,
            rng_state=meta.get("rng_state", {}),
            loss_history=list(meta.get("loss_history", [])),
            metadata=meta.get("metadata", {}),
        )


class CheckpointStore:
    """A directory of iteration-stamped checkpoints with retention."""

    def __init__(self, directory: str, keep: int = 3, prefix: str = "state"):
        if keep < 1:
            raise ValueError(f"keep must be >= 1, got {keep}")
        self.directory = directory
        self.keep = keep
        self.prefix = prefix
        #: Checkpoint paths this store quarantined as damaged.
        self.quarantined: list[str] = []

    # ------------------------------------------------------------------
    def _path(self, iteration: int) -> str:
        return os.path.join(self.directory, f"{self.prefix}-{iteration:08d}.npz")

    def paths(self) -> list[str]:
        """Checkpoint files, oldest first (name order == iteration order)."""
        if not os.path.isdir(self.directory):
            return []
        names = sorted(
            n for n in os.listdir(self.directory)
            if n.startswith(self.prefix + "-") and n.endswith(".npz")
        )
        return [os.path.join(self.directory, n) for n in names]

    # ------------------------------------------------------------------
    def save(self, checkpoint: TrainingCheckpoint) -> str:
        """Persist ``checkpoint`` and prune beyond the retention limit."""
        path = self._path(checkpoint.iteration)
        checkpoint.save(path)
        for stale in self.paths()[:-self.keep]:
            for victim in (stale, stale + CHECKSUM_SUFFIX):
                try:
                    os.unlink(victim)
                except OSError:
                    pass
        return path

    def latest_path(self) -> str | None:
        paths = self.paths()
        return paths[-1] if paths else None

    def _quarantine(self, path: str) -> None:
        """Move a damaged checkpoint (and its sidecar) out of rotation.

        The renamed ``*.quarantined`` file no longer matches
        :meth:`paths`, so future loads and retention passes skip it —
        but the bytes stay on disk for post-mortems.
        """
        from repro.reliability.integrity import quarantine_file

        quarantine_file(path)
        self.quarantined.append(path)
        from repro import obs

        obs.count("checkpoint.quarantined")
        obs.emit("checkpoint.quarantined", path=str(path))

    def load_latest(self) -> TrainingCheckpoint | None:
        """Newest readable checkpoint, or ``None`` if none exist.

        A damaged newest file — truncated by a crash mid-write under a
        non-atomic editor, torn by a partial copy, or failing its sha256
        sidecar — is *quarantined* (renamed ``*.quarantined``) and the
        next most recent checkpoint is loaded instead; this is the
        recovery path the retention of K > 1 files exists for.  The
        paths quarantined by this store instance are listed in
        :attr:`quarantined`.
        """
        last_error: CheckpointError | None = None
        for path in reversed(self.paths()):
            try:
                return TrainingCheckpoint.load(path)
            except CheckpointError as exc:
                last_error = exc
                self._quarantine(path)
        if last_error is not None:
            raise CheckpointError(
                f"no readable checkpoint in {self.directory!r}: {last_error}"
            ) from last_error
        return None
