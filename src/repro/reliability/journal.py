"""Append-only JSONL journal for resumable table runs.

One journal file records the progress of one
:func:`~repro.experiments.harness.run_adaptation` invocation.  Records
are single JSON objects, one per line:

* ``{"kind": "run", "title": ..., "settings": [...], "shots": [...]}``
  — written once; a resume against a journal whose run header does not
  match the requested run is rejected (the file belongs to a different
  table);
* ``{"kind": "cell", "method": ..., "setting": ..., "k_shot": ...,
  "f1": ..., "half_width": ..., "episodes": ..., "train_seconds": ...,
  "eval_seconds": ..., "reused_training": ...}`` — one completed cell;
* ``{"kind": "failure", "method": ..., "setting": ..., "k_shot": ...,
  "error": ...}`` — a cell abandoned after retries (informational;
  failed cells are re-attempted on resume);
* ``{"kind": "note", "note": ..., ...}`` — free-form operational
  annotations (e.g. self-healing execution summaries: retried or
  quarantined episodes, pool restarts).  Notes never affect resume
  decisions; they exist for post-mortems.

Every written record additionally carries run provenance: ``version``
(the ``repro`` package version) and, once :meth:`RunJournal.begin` has
run, ``config_hash`` — a short sha256 digest of the run header.  Both
are stripped on read-back, so resume decisions (header equality, cell
lookups) are provenance-blind and journals written before this field
existed still resume cleanly.

Each record is flushed and fsynced as it is written, and a torn final
line (the process died mid-write) is ignored when the file is read
back, so the journal is crash-safe by construction.
"""

from __future__ import annotations

import hashlib
import json
import os

_PROVENANCE_KEYS = ("config_hash", "version")


def config_hash(header: dict) -> str:
    """Short, stable digest of a run-header dict."""
    blob = json.dumps(header, sort_keys=True).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()[:12]


class JournalMismatch(RuntimeError):
    """The journal on disk was written by a different run configuration."""


class RunJournal:
    """Crash-safe progress record keyed by ``(method, setting, k_shot)``."""

    def __init__(self, path: str):
        from repro import __version__

        self.path = path
        self._cells: dict[tuple[str, str, int], dict] = {}
        self._failures: list[dict] = []
        self._notes: list[dict] = []
        self._header: dict | None = None
        #: Provenance merged into every written record (``config_hash``
        #: joins at :meth:`begin` time, once the header is known).
        self._meta: dict = {"version": __version__}
        self._load()
        self._fh = None

    # ------------------------------------------------------------------
    def _load(self) -> None:
        if not os.path.exists(self.path):
            return
        with open(self.path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    # Torn tail from a crash mid-append; everything
                    # before it is intact, so just stop consuming.
                    break
                kind = record.pop("kind", None)
                for key in _PROVENANCE_KEYS:
                    record.pop(key, None)
                if kind == "run":
                    self._header = record
                elif kind == "cell":
                    key = (record["method"], record["setting"],
                           int(record["k_shot"]))
                    self._cells[key] = record
                elif kind == "failure":
                    self._failures.append(record)
                elif kind == "note":
                    self._notes.append(record)

    def _append(self, kind: str, record: dict) -> None:
        if self._fh is None:
            directory = os.path.dirname(os.path.abspath(self.path))
            os.makedirs(directory, exist_ok=True)
            self._fh = open(self.path, "a", encoding="utf-8")
        self._fh.write(json.dumps({"kind": kind, **record, **self._meta}) + "\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    # ------------------------------------------------------------------
    def begin(self, title: str, settings: list[str],
              shots: tuple[int, ...]) -> None:
        """Validate (or write) the run header for this journal."""
        header = {
            "title": title,
            "settings": list(settings),
            "shots": [int(k) for k in shots],
        }
        self._meta["config_hash"] = config_hash(header)
        if self._header is None:
            self._header = header
            self._append("run", header)
        elif self._header != header:
            raise JournalMismatch(
                f"journal {self.path!r} was written for "
                f"{self._header!r}, cannot resume {header!r}"
            )

    # ------------------------------------------------------------------
    def completed(self, method: str, setting: str, k_shot: int) -> dict | None:
        """The recorded cell payload, or ``None`` if not yet completed."""
        return self._cells.get((method, setting, int(k_shot)))

    def completed_cells(self) -> list[dict]:
        return list(self._cells.values())

    def failures(self) -> list[dict]:
        return list(self._failures)

    def record_cell(self, method: str, setting: str, k_shot: int,
                    payload: dict) -> None:
        record = {"method": method, "setting": setting,
                  "k_shot": int(k_shot), **payload}
        self._cells[(method, setting, int(k_shot))] = record
        self._append("cell", record)

    def record_failure(self, method: str, setting: str, k_shot: int,
                       error: str) -> None:
        record = {"method": method, "setting": setting,
                  "k_shot": int(k_shot), "error": error}
        self._failures.append(record)
        self._append("failure", record)

    # ------------------------------------------------------------------
    def notes(self) -> list[dict]:
        return list(self._notes)

    def record_note(self, note: str, payload: dict | None = None) -> None:
        """Append an operational annotation (never consulted on resume)."""
        record = {"note": note, **(payload or {})}
        self._notes.append(record)
        self._append("note", record)
