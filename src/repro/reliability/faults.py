"""Deterministic fault injection for testing every recovery path.

Production code never imports this module; tests hand a
:class:`FaultInjector` to the hooks the runtime already exposes:

* :class:`~repro.reliability.guard.GuardedStep` calls
  :meth:`FaultInjector.before_step` before validating each update, so a
  test can corrupt gradients with NaN at exactly iteration *k* or raise
  mid-``fit``;
* :func:`~repro.experiments.harness.run_adaptation` calls its
  ``on_cell`` hook after each completed cell, so
  :meth:`FaultInjector.cell_hook` can simulate a kill between cells;
* :meth:`FaultInjector.truncate_file` damages a checkpoint on disk the
  way a crash mid-write (pre-atomic-rename) or a torn copy would;
* the supervised executor (:mod:`repro.perf.executor`) consults
  :meth:`FaultInjector.worker_fault` and
  :meth:`FaultInjector.corrupt_result` inside each forked worker, so a
  test can crash (``os._exit``), hang, fail or corrupt exactly the
  episodes it chooses — deterministically per index, independent of
  scheduling;
* :class:`~repro.serving.TaggingService` consults
  :meth:`FaultInjector.before_batch` once per micro-batch, simulating a
  whole-batch encode failure;
* the persistent store (:class:`repro.store.ContentStore`) consults
  :meth:`FaultInjector.store_append_fault` before each record append
  (torn write, ENOSPC) and :meth:`FaultInjector.store_lock_blocked` at
  open (writer-lock contention); :meth:`FaultInjector.flip_byte`
  corrupts a segment on disk the way failing media would.

Two exception types keep fault semantics honest: :class:`InjectedFault`
is an ordinary ``RuntimeError`` that recovery code is *supposed* to
handle (a failing method), while :class:`SimulatedCrash` derives from
``BaseException`` so no ``except Exception`` isolation layer can
swallow it — exactly like a real SIGKILL.
"""

from __future__ import annotations

import os

import numpy as np


class InjectedFault(RuntimeError):
    """An ordinary failure injected into a training run."""


class SimulatedCrash(BaseException):
    """A process death; must never be caught by fault-isolation layers."""


class FaultInjector:
    """Test-only deterministic fault source.

    ``nan_grad_at`` and ``raise_at`` are iterables of guarded-step
    indices *local to each training phase* (the supervised warm-up and
    the meta loop each start counting at 0); ``raise_after_calls``
    counts consultations globally across phases and chunks.
    """

    def __init__(self, nan_grad_at=(), raise_at=(), raise_after_calls=None,
                 decode_raise_at=(), slow_decode_s=None, slow_decode_for=None,
                 clock=None, batch_raise_at=(),
                 worker_crash_at=(), worker_hang_at=(), worker_corrupt_at=(),
                 worker_raise_at=(), worker_crash_p=0.0, worker_hang_p=0.0,
                 worker_seed=0, worker_fault_attempts=(0,),
                 worker_hang_s=30.0,
                 store_torn_write_at=(), store_enospc_at=(),
                 store_lock_contention=False):
        self.nan_grad_at = frozenset(int(i) for i in nan_grad_at)
        self.raise_at = frozenset(int(i) for i in raise_at)
        #: Raise once the injector has been consulted this many times in
        #: total, across all guards and phases of a ``fit`` — the knob
        #: for killing a run mid-chunk.
        self.raise_after_calls = raise_after_calls
        self.calls = 0
        self.corrupted_iterations: list[int] = []
        # -- decode-path faults (see before_decode) --------------------
        self.decode_raise_at = frozenset(int(i) for i in decode_raise_at)
        #: Synthetic seconds each Viterbi attempt "takes": advanced on a
        #: :class:`~repro.serving.deadline.ManualClock` (``clock``) so a
        #: slow decoder is simulated without sleeping.
        self.slow_decode_s = slow_decode_s
        #: Only the first this-many decode consultations are slow
        #: (``None`` = all of them) — the knob for a decoder that
        #: recovers, exercising breaker half-open → closed.
        self.slow_decode_for = slow_decode_for
        self.clock = clock
        self.decode_calls = 0
        # -- whole-batch serving faults (see before_batch) -------------
        self.batch_raise_at = frozenset(int(i) for i in batch_raise_at)
        self.batch_calls = 0
        # -- executor worker faults (see worker_fault) -----------------
        self.worker_crash_at = frozenset(int(i) for i in worker_crash_at)
        self.worker_hang_at = frozenset(int(i) for i in worker_hang_at)
        self.worker_corrupt_at = frozenset(int(i) for i in worker_corrupt_at)
        self.worker_raise_at = frozenset(int(i) for i in worker_raise_at)
        #: Probabilities of a crash / hang per index, rolled from a
        #: deterministic per-``(worker_seed, index)`` stream — the same
        #: index always draws the same fault regardless of scheduling.
        self.worker_crash_p = float(worker_crash_p)
        self.worker_hang_p = float(worker_hang_p)
        self.worker_seed = int(worker_seed)
        #: Attempt numbers (0-based) on which worker faults fire; the
        #: default ``(0,)`` makes every fault transient, so a retry of
        #: the same index succeeds.
        self.worker_fault_attempts = frozenset(
            int(a) for a in worker_fault_attempts
        )
        #: How long a hung worker sleeps (real seconds); the supervisor
        #: should detect the hang via its task deadline long before this.
        self.worker_hang_s = float(worker_hang_s)
        # -- persistent-store faults (see store_append_fault) ----------
        #: Append indices (per store instance) where the writer "dies"
        #: mid-record: half the record reaches disk and the store handle
        #: is poisoned, exactly what a SIGKILL mid-``write`` leaves.
        self.store_torn_write_at = frozenset(
            int(i) for i in store_torn_write_at
        )
        #: Append indices that fail with a full disk *before* any byte
        #: lands (the clean ENOSPC boundary).
        self.store_enospc_at = frozenset(int(i) for i in store_enospc_at)
        #: When true, the writer lock is reported as held by someone
        #: else, forcing the read-only degradation path.
        self.store_lock_contention = bool(store_lock_contention)

    # ------------------------------------------------------------------
    # GuardedStep hook
    # ------------------------------------------------------------------
    def before_step(self, iteration: int, params) -> None:
        """Corrupt gradients or raise, per the configured schedules."""
        self.calls += 1
        if (self.raise_after_calls is not None
                and self.calls >= self.raise_after_calls):
            raise InjectedFault(
                f"injected failure after {self.calls} guarded steps"
            )
        if iteration in self.raise_at:
            raise InjectedFault(f"injected failure at iteration {iteration}")
        if iteration in self.nan_grad_at:
            for p in params:
                if p.grad is not None:
                    p.grad.data = np.full_like(p.grad.data, np.nan)
                    break
            self.corrupted_iterations.append(iteration)

    # ------------------------------------------------------------------
    # Serving hooks
    # ------------------------------------------------------------------
    def before_decode(self) -> None:
        """Simulate Viterbi cost/failure; consulted once per attempt.

        Wired into :meth:`TaggingService._on_decode` →
        ``decode_within(on_sentence=...)``: first the configured
        synthetic latency is applied (advancing the injected manual
        clock, so deadline overruns are exact and deterministic), then
        the raise schedule fires — index ``i`` in ``decode_raise_at``
        fails the ``i``-th Viterbi attempt with an :class:`InjectedFault`
        that the degradation ladder must absorb.
        """
        i = self.decode_calls
        self.decode_calls += 1
        slow = self.slow_decode_s is not None and (
            self.slow_decode_for is None or i < self.slow_decode_for
        )
        if slow:
            if self.clock is not None and hasattr(self.clock, "advance"):
                self.clock.advance(self.slow_decode_s)
            else:  # pragma: no cover - real-time fallback
                import time

                time.sleep(self.slow_decode_s)
        if i in self.decode_raise_at:
            raise InjectedFault(f"injected decode failure at attempt {i}")

    def before_batch(self) -> None:
        """Fail a whole micro-batch; consulted once per batch.

        Wired into :meth:`TaggingService._process_batch`: consultation
        ``i`` in ``batch_raise_at`` raises an :class:`InjectedFault`
        before the batch is encoded, exercising the service's
        whole-batch degradation path (every member gets a degraded,
        span-less answer — never a hang or a traceback).
        """
        i = self.batch_calls
        self.batch_calls += 1
        if i in self.batch_raise_at:
            raise InjectedFault(f"injected batch failure at batch {i}")

    # ------------------------------------------------------------------
    # Executor worker hooks
    # ------------------------------------------------------------------
    def _roll(self, index: int, channel: int) -> float:
        """Deterministic uniform draw for ``(seed, index, channel)``."""
        rng = np.random.default_rng(
            (self.worker_seed, 104729, int(index), int(channel))
        )
        return float(rng.random())

    def planned_worker_fault(self, index: int) -> str | None:
        """The fault this injector will deal to ``index`` on a fault
        attempt: ``"crash"`` | ``"hang"`` | ``"raise"`` | ``"corrupt"``
        | ``None``.  Pure — usable from tests and chaos invariants to
        predict exactly which indices must show retries."""
        if index in self.worker_crash_at or (
                self.worker_crash_p > 0.0
                and self._roll(index, 1) < self.worker_crash_p):
            return "crash"
        if index in self.worker_hang_at or (
                self.worker_hang_p > 0.0
                and self._roll(index, 2) < self.worker_hang_p):
            return "hang"
        if index in self.worker_raise_at:
            return "raise"
        if index in self.worker_corrupt_at:
            return "corrupt"
        return None

    def worker_fault(self, index: int, attempt: int) -> None:
        """Kill, hang or fail a pool worker; consulted inside the worker.

        Wired into the supervised executor's worker entry point
        (:func:`repro.perf.executor._run_index`) before the work
        function runs.  A *crash* is ``os._exit`` — the hard worker
        death no ``except`` can absorb; a *hang* sleeps far past any
        sane task deadline; a *raise* is an ordinary
        :class:`InjectedFault` delivered through the result channel.
        """
        if attempt not in self.worker_fault_attempts:
            return
        fault = self.planned_worker_fault(index)
        if fault == "crash":
            os._exit(23)
        if fault == "hang":
            import time

            time.sleep(self.worker_hang_s)
        elif fault == "raise":
            raise InjectedFault(
                f"injected worker failure at index {index} "
                f"(attempt {attempt})"
            )

    def corrupt_result(self, index: int, attempt: int, value):
        """Return a corrupted stand-in for ``value`` on scheduled faults.

        The executor's ``validate_fn`` must reject the NaN and charge
        the attempt, so the retry (fault-free) restores the true value.
        """
        if (attempt in self.worker_fault_attempts
                and self.planned_worker_fault(index) == "corrupt"):
            return float("nan")
        return value

    @staticmethod
    def malformed_token_sequences() -> list[list]:
        """Hostile request payloads for sanitizer/service fuzzing.

        Control characters, zero-width and bidi format characters, lone
        surrogates, astral-plane text, a 10k-character token, wrong
        shapes — the service must answer each with a structured result,
        never a traceback.
        """
        return [
            [],                                   # empty request
            [""],                                 # empty token
            ["\x00"],                             # NUL-only token
            ["a\x00b", "ok"],                     # embedded control char
            ["\u200b\u200d"],                   # zero-width-only token
            ["\u202eevil", "text"],              # bidi override
            ["caf\u00e9", "cafe\u0301"],        # NFC vs NFD forms
            ["\U0001f600\U0001f3d4", "ok"],       # astral-plane emoji
            ["\ud800broken"],                     # lone surrogate
            ["x" * 10_000],                       # 10k-char token
            ["tok\ten", "new\nline"],             # embedded whitespace
            "a bare string, not a token list",    # wrong shape
            [b"bytes", "str"],                    # wrong element type
            [None, "str"],                        # wrong element type
            [["nested"], "str"],                  # wrong element type
        ]

    # ------------------------------------------------------------------
    # Harness hook
    # ------------------------------------------------------------------
    @staticmethod
    def kill_after_cells(n: int):
        """An ``on_cell`` callback that simulates a kill after ``n`` cells."""
        counter = {"cells": 0}

        def hook(_cell) -> None:
            counter["cells"] += 1
            if counter["cells"] >= n:
                raise SimulatedCrash(f"simulated kill after {n} cells")

        return hook

    # ------------------------------------------------------------------
    # Persistent-store hooks (repro.store)
    # ------------------------------------------------------------------
    def store_append_fault(self, index: int) -> str | None:
        """Fault verdict for the ``index``-th append of a store instance.

        Consulted by :meth:`repro.store.ContentStore.put` before each
        record write: ``"torn"`` tears the record in half and poisons
        the writer (simulated crash mid-append), ``"enospc"`` fails
        cleanly before any byte lands, ``None`` lets the append through.
        """
        if index in self.store_torn_write_at:
            return "torn"
        if index in self.store_enospc_at:
            return "enospc"
        return None

    def store_lock_blocked(self) -> bool:
        """Whether the store writer lock should appear already held.

        Consulted once at :class:`~repro.store.ContentStore` open; a
        ``True`` forces the read-only-fallback degradation path without
        needing a second live process.
        """
        return self.store_lock_contention

    # ------------------------------------------------------------------
    # Filesystem faults
    # ------------------------------------------------------------------
    @staticmethod
    def truncate_file(path: str, keep_bytes: int = 64) -> None:
        """Truncate ``path`` in place, as a torn write would leave it."""
        size = os.path.getsize(path)
        with open(path, "r+b") as fh:
            fh.truncate(min(keep_bytes, max(size - 1, 0)))

    @staticmethod
    def flip_byte(path: str, offset: int) -> None:
        """XOR one byte of ``path`` in place — silent media corruption.

        A negative ``offset`` counts from the end of the file, like a
        Python index.
        """
        size = os.path.getsize(path)
        if size == 0:
            return
        if offset < 0:
            offset += size
        offset = min(max(offset, 0), size - 1)
        with open(path, "r+b") as fh:
            fh.seek(offset)
            byte = fh.read(1)
            fh.seek(offset)
            fh.write(bytes([byte[0] ^ 0xFF]))
