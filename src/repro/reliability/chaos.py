"""Cross-layer chaos scenarios and the ``repro chaos soak`` harness.

Each :class:`ChaosScenario` composes :class:`FaultInjector` hooks with
one production recovery path — the supervised executor, the guarded
training step, the checkpoint store, the serving degradation ladder —
and asserts *invariants* about what self-healing must have preserved:

* results come back ordered, with no index lost or duplicated;
* scores are bit-identical to a fault-free serial run of the same work;
* damaged checkpoints are quarantined, never half-loaded, and no
  partial file is left behind;
* the serving breaker opens under a fault burst and re-closes through
  its half-open probe once the burst ends;
* no scenario leaks a fast-path mode change past its own frame
  (:func:`repro.perf.fastpath.fastpath_state` must equal
  :data:`repro.perf.fastpath.DEFAULT_FASTPATH_STATE` afterwards).

:func:`run_scenario` runs one scenario and returns a
:class:`ScenarioResult`; :func:`run_soak` loops the scenario suite
under a wall-clock / round budget (always completing at least one full
round, so a fixed-seed CI smoke run is deterministic) and returns a
:class:`SoakReport`.  The CLI verb is ``repro chaos soak``.

Scenarios are deterministic given their seed: every fault schedule is
derived from it, and nothing here consults global randomness.
"""

from __future__ import annotations

import math
import os
import time
from dataclasses import dataclass, field
from typing import Callable

# ----------------------------------------------------------------------
# Result containers
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Invariant:
    """One checked property of a scenario run."""

    name: str
    ok: bool
    detail: str = ""

    def render(self) -> str:
        mark = "ok " if self.ok else "FAIL"
        line = f"    [{mark}] {self.name}"
        if self.detail and not self.ok:
            line += f" — {self.detail}"
        return line


@dataclass
class ScenarioResult:
    """Outcome of one :func:`run_scenario` invocation."""

    scenario: str
    seed: int
    invariants: tuple[Invariant, ...] = ()
    #: Scenario-specific observations (counts, modes, reports) — JSONable.
    details: dict = field(default_factory=dict)
    wall_time_s: float = 0.0
    #: Set when the scenario body itself raised (always a failure).
    error: str | None = None

    @property
    def passed(self) -> bool:
        return self.error is None and all(inv.ok for inv in self.invariants)

    def failures(self) -> list[Invariant]:
        return [inv for inv in self.invariants if not inv.ok]

    def summary(self) -> dict:
        """JSON-serialisable digest for journals and ``--json`` output."""
        return {
            "scenario": self.scenario,
            "seed": self.seed,
            "passed": self.passed,
            "invariants": [
                {"name": inv.name, "ok": inv.ok, "detail": inv.detail}
                for inv in self.invariants
            ],
            "details": self.details,
            "wall_time_s": round(self.wall_time_s, 3),
            "error": self.error,
        }

    def render(self) -> str:
        mark = "pass" if self.passed else "FAIL"
        lines = [
            f"  [{mark}] {self.scenario} seed={self.seed} "
            f"({self.wall_time_s:.2f}s, "
            f"{sum(inv.ok for inv in self.invariants)}"
            f"/{len(self.invariants)} invariants)"
        ]
        if self.error is not None:
            lines.append(f"    [FAIL] scenario raised: {self.error}")
        for inv in self.invariants:
            if not inv.ok:
                lines.append(inv.render())
        return "\n".join(lines)


@dataclass
class SoakReport:
    """Outcome of one :func:`run_soak` invocation."""

    seed: int
    rounds: int
    results: list[ScenarioResult] = field(default_factory=list)
    wall_time_s: float = 0.0
    #: True when the wall-clock budget (not ``max_rounds``) stopped it.
    budget_exhausted: bool = False

    @property
    def passed(self) -> bool:
        return all(r.passed for r in self.results)

    def failures(self) -> list[ScenarioResult]:
        return [r for r in self.results if not r.passed]

    def summary(self) -> dict:
        return {
            "seed": self.seed,
            "rounds": self.rounds,
            "runs": len(self.results),
            "passed": self.passed,
            "failures": [r.scenario for r in self.failures()],
            "wall_time_s": round(self.wall_time_s, 3),
            "budget_exhausted": self.budget_exhausted,
            "results": [r.summary() for r in self.results],
        }

    def render(self) -> str:
        verdict = "PASS" if self.passed else "FAIL"
        lines = [
            f"chaos soak: seed={self.seed} rounds={self.rounds} "
            f"runs={len(self.results)} wall={self.wall_time_s:.1f}s "
            f"{verdict}"
        ]
        lines.extend(r.render() for r in self.results)
        return "\n".join(lines)


@dataclass(frozen=True)
class ChaosScenario:
    """A named fault-composition with invariant checks.

    ``run(seed, check)`` executes the scenario; it reports invariants
    through ``check(name, ok, detail="")`` and returns a JSONable
    ``details`` dict (or ``None``).
    """

    name: str
    description: str
    run: Callable


#: Registry of every named scenario, in definition order.
SCENARIOS: dict[str, ChaosScenario] = {}


def _scenario(name: str, description: str):
    def register(fn):
        SCENARIOS[name] = ChaosScenario(name, description, fn)
        return fn
    return register


# ----------------------------------------------------------------------
# Executor-layer scenarios (synthetic work, real supervision)
# ----------------------------------------------------------------------

def _synthetic_work(item, index):
    """Cheap, deterministic, index-independent-of-scheduling work."""
    return ((int(item) * 31 + 7) % 1000) / 1000.0


def _reject_non_finite(value, index):
    if not isinstance(value, float) or not math.isfinite(value):
        return f"index {index}: non-finite result {value!r}"
    return None


def _check_executor_run(check, report, items, *, injector=None,
                        fault_kind=None):
    """The invariants every executor scenario shares.

    Ordered results, no lost/duplicate index, bit-identical parity with
    a fault-free serial run, no ``ERR`` records — and, when the run was
    genuinely parallel, that every index the injector *planned* to
    fault shows up among the retried indices (fault schedules in the
    serial fallback path are intentionally inert, so those checks are
    recorded as skipped there).
    """
    n = len(items)
    expected = [_synthetic_work(item, i) for i, item in enumerate(items)]
    check("no-lost-or-duplicate-index",
          sorted(t.index for t in report.tasks) == list(range(n)),
          f"task indices {sorted(t.index for t in report.tasks)}")
    check("ordered-result-parity", report.results == expected,
          f"results diverge from fault-free serial run")
    check("no-error-records", not report.failed_indices,
          f"failed indices {report.failed_indices}")
    check("every-attempt-accounted", report.total_attempts >= n,
          f"{report.total_attempts} attempts for {n} tasks")
    parallel = report.mode == "parallel"
    if injector is not None and fault_kind is not None:
        planned = [i for i in range(n)
                   if injector.planned_worker_fault(i) == fault_kind]
        if parallel:
            check("faults-actually-injected", bool(planned),
                  f"no {fault_kind} faults planned for this seed")
            check("planned-faults-all-retried",
                  set(planned) <= set(report.retried_indices),
                  f"planned {planned}, retried {report.retried_indices}")
        else:
            check("planned-faults-all-retried", True,
                  "skipped: serial mode (fork unavailable)")
        return planned
    return []


@_scenario(
    "executor-crash",
    "workers killed with os._exit mid-task; supervisor retries, result "
    "parity with a fault-free serial run holds",
)
def _run_executor_crash(seed, check):
    from repro.perf.executor import EpisodeExecutor
    from repro.reliability.faults import FaultInjector

    n = 24
    items = list(range(n))
    injector = FaultInjector(
        worker_crash_at=(1, n // 2), worker_crash_p=0.15, worker_seed=seed,
    )
    executor = EpisodeExecutor(
        workers=3, max_attempts=3, fault_injector=injector,
        stall_timeout_s=10.0,
    )
    report = executor.run(_synthetic_work, items)
    planned = _check_executor_run(check, report, items, injector=injector,
                                  fault_kind="crash")
    return {"execution": report.summary(), "planned_crashes": planned}


@_scenario(
    "executor-hang",
    "workers sleep past the task deadline; supervisor rebuilds the pool, "
    "requeues innocents without charging attempts, parity holds",
)
def _run_executor_hang(seed, check):
    from repro.perf.executor import EpisodeExecutor
    from repro.reliability.faults import FaultInjector

    n = 10
    items = list(range(n))
    injector = FaultInjector(
        worker_hang_at=(2,), worker_hang_p=0.1, worker_seed=seed,
        worker_hang_s=5.0,
    )
    executor = EpisodeExecutor(
        workers=2, task_timeout_s=0.25, max_attempts=3,
        fault_injector=injector, stall_timeout_s=10.0,
    )
    report = executor.run(_synthetic_work, items)
    planned = _check_executor_run(check, report, items, injector=injector,
                                  fault_kind="hang")
    if report.mode == "parallel":
        check("hang-rebuilt-pool", report.pool_restarts >= 1,
              f"pool_restarts={report.pool_restarts}")
        check("deadline-recorded",
              any("deadline" in err for t in report.tasks
                  for err in t.errors),
              "no task records a deadline overrun")
    return {"execution": report.summary(), "planned_hangs": planned}


@_scenario(
    "executor-corrupt",
    "workers return NaN results; validate_fn rejects them, the retry "
    "restores the true value, parity holds",
)
def _run_executor_corrupt(seed, check):
    from repro.perf.executor import EpisodeExecutor
    from repro.reliability.faults import FaultInjector

    n = 12
    items = list(range(n))
    injector = FaultInjector(
        worker_corrupt_at=(0, 3, 7), worker_seed=seed,
    )
    executor = EpisodeExecutor(
        workers=2, max_attempts=3, fault_injector=injector,
        validate_fn=_reject_non_finite, stall_timeout_s=10.0,
    )
    report = executor.run(_synthetic_work, items)
    planned = _check_executor_run(check, report, items, injector=injector,
                                  fault_kind="corrupt")
    if report.mode == "parallel":
        check("rejection-reasons-recorded",
              all(any("invalid result" in err
                      for err in report.tasks[i].errors)
                  for i in planned),
              "a corrupted index has no 'invalid result' failure reason")
    return {"execution": report.summary(), "planned_corruptions": planned}


# ----------------------------------------------------------------------
# Evaluation-layer scenario (real model, real episodes)
# ----------------------------------------------------------------------

@_scenario(
    "episode-eval-crash",
    "evaluate_method under worker crash/raise faults: scores stay "
    "bit-identical to the fault-free serial run, no episode is lost",
)
def _run_episode_eval_crash(seed, check):
    from repro.data.synthetic import generate_dataset
    from repro.data.vocab import CharVocabulary, Vocabulary
    from repro.experiments.configs import SCALES
    from repro.meta.evaluate import (
        build_method, evaluate_method, fixed_episodes,
    )
    from repro.reliability.faults import FaultInjector

    dataset = generate_dataset("OntoNotes", scale=0.02, seed=seed % 97)
    half = len(dataset) // 2
    train, test = dataset[:half], dataset[half:]
    scale = SCALES["smoke"]
    word_vocab = Vocabulary.from_datasets([train])
    char_vocab = CharVocabulary.from_datasets([train])
    adapter = build_method("ProtoNet", word_vocab, char_vocab,
                           scale.n_way, scale.method_config)
    episodes = fixed_episodes(test, scale.n_way, 1, 4, seed=5,
                              query_size=scale.query_size)
    baseline = evaluate_method(adapter, episodes, workers=0)
    injector = FaultInjector(worker_crash_at=(0,), worker_raise_at=(1,),
                             worker_seed=seed)
    faulted = evaluate_method(
        adapter, episodes, workers=2, task_timeout_s=120.0,
        fault_injector=injector,
    )
    check("score-parity-with-serial",
          faulted.episode_scores == baseline.episode_scores,
          f"faulted {faulted.episode_scores} != "
          f"serial {baseline.episode_scores}")
    check("no-failed-episodes", not faulted.failed_episodes,
          f"failed episodes {faulted.failed_episodes}")
    check("execution-report-present", faulted.execution is not None)
    execution = faulted.execution
    if execution is not None:
        check("every-episode-accounted",
              sorted(t.index for t in execution.tasks)
              == list(range(len(episodes))),
              f"task indices {sorted(t.index for t in execution.tasks)}")
        if execution.mode == "parallel":
            check("faults-retried", bool(execution.retried_indices),
                  "no retries despite scheduled crash/raise faults")
    return {
        "episodes": len(episodes),
        "f1": baseline.f1,
        "execution": execution.summary() if execution is not None else None,
    }


@_scenario(
    "recurrent-kernel-parity",
    "fused recurrent kernel flipped on/off mid-stream: layer outputs "
    "and gradients stay bit-identical to the legacy tape, episode "
    "scores are unchanged, the second-order guard trips",
)
def _run_recurrent_kernel_parity(seed, check):
    import numpy as np

    from repro.autodiff.tensor import Tensor, grad
    from repro.data.synthetic import generate_dataset
    from repro.data.vocab import CharVocabulary, Vocabulary
    from repro.experiments.configs import SCALES
    from repro.meta.evaluate import (
        build_method, evaluate_method, fixed_episodes,
    )
    from repro.nn.rnn import BiGRU
    from repro.perf.fastpath import recurrent_kernel

    rng = np.random.default_rng(seed)
    layer = BiGRU(6, 5, np.random.default_rng(seed + 1))
    x_data = rng.normal(size=(4, 9, 6))
    lengths = rng.integers(0, 10, size=4)  # includes zero-length rows
    mask = (np.arange(9)[None, :] < lengths[:, None]).astype(float)

    def outputs_and_grads():
        x = Tensor(x_data, requires_grad=True)
        out = layer(x, mask)
        grads = grad((out * out).sum(), [x] + layer.parameters())
        return out.data, [g.data for g in grads]

    fused_out, fused_grads = outputs_and_grads()
    with recurrent_kernel(False):
        tape_out, tape_grads = outputs_and_grads()
    check("layer-outputs-bit-identical",
          np.array_equal(fused_out, tape_out))
    check("layer-gradients-bit-identical",
          all(np.array_equal(a, b)
              for a, b in zip(fused_grads, tape_grads)))

    guard_tripped = False
    try:
        x = Tensor(x_data, requires_grad=True)
        out = layer(x, mask)
        grad((out * out).sum(), [x], create_graph=True)
    except RuntimeError:
        guard_tripped = True
    check("second-order-guard-trips", guard_tripped,
          "create_graph=True through the fused scan did not raise")

    dataset = generate_dataset("OntoNotes", scale=0.02, seed=seed % 89)
    half = len(dataset) // 2
    train, test = dataset[:half], dataset[half:]
    scale = SCALES["smoke"]
    word_vocab = Vocabulary.from_datasets([train])
    char_vocab = CharVocabulary.from_datasets([train])
    adapter = build_method("ProtoNet", word_vocab, char_vocab,
                           scale.n_way, scale.method_config)
    episodes = fixed_episodes(test, scale.n_way, 1, 2, seed=7,
                              query_size=scale.query_size)
    fused_eval = evaluate_method(adapter, episodes, workers=0)
    with recurrent_kernel(False):
        tape_eval = evaluate_method(adapter, episodes, workers=0)
    check("episode-scores-bit-identical",
          fused_eval.episode_scores == tape_eval.episode_scores,
          f"fused {fused_eval.episode_scores} != "
          f"tape {tape_eval.episode_scores}")
    return {
        "episodes": len(episodes),
        "f1": fused_eval.f1,
        "lengths": lengths.tolist(),
    }


# ----------------------------------------------------------------------
# Training-layer scenario (guarded step)
# ----------------------------------------------------------------------

@_scenario(
    "training-guard",
    "NaN gradients injected into fit: the guarded step skips them, "
    "parameters stay finite, the anomaly report accounts for the skip",
)
def _run_training_guard(seed, check):
    import numpy as np

    from repro.data.episodes import EpisodeSampler
    from repro.data.synthetic import generate_dataset
    from repro.data.vocab import CharVocabulary, Vocabulary
    from repro.experiments.configs import SCALES
    from repro.meta.evaluate import build_method
    from repro.reliability.faults import FaultInjector

    dataset = generate_dataset("OntoNotes", scale=0.02, seed=seed % 97)
    half = len(dataset) // 2
    train = dataset[:half]
    scale = SCALES["smoke"]
    word_vocab = Vocabulary.from_datasets([train])
    char_vocab = CharVocabulary.from_datasets([train])
    adapter = build_method("FewNER", word_vocab, char_vocab,
                           scale.n_way, scale.method_config)
    adapter.fault_injector = FaultInjector(nan_grad_at={0})
    sampler = EpisodeSampler(train, scale.n_way, 1,
                             query_size=scale.query_size, seed=7)
    adapter.fit(sampler, 2)
    finite = all(
        bool(np.all(np.isfinite(p.data)))
        for _name, p in adapter.model.named_parameters()
    )
    check("parameters-stay-finite", finite,
          "NaN reached a parameter tensor")
    report = adapter.anomaly_report
    check("anomaly-report-present", report is not None)
    if report is not None:
        check("poisoned-step-skipped", report.steps_skipped >= 1,
              f"steps_skipped={report.steps_skipped}")
        check("anomaly-recorded", not report.clean,
              "report claims a clean run despite the injected NaN")
    return {"anomalies": None if report is None else report.steps_skipped}


# ----------------------------------------------------------------------
# Checkpoint-layer scenario
# ----------------------------------------------------------------------

@_scenario(
    "checkpoint-corruption",
    "newest checkpoint bit-flipped on disk: sha256 catches it, the file "
    "is quarantined, the previous good checkpoint loads, no partial "
    "file is left behind",
)
def _run_checkpoint_corruption(seed, check):
    import shutil
    import tempfile

    import numpy as np

    from repro.reliability.checkpoint import (
        CHECKSUM_SUFFIX, QUARANTINE_SUFFIX, CheckpointStore,
        TrainingCheckpoint,
    )

    directory = tempfile.mkdtemp(prefix="chaos-ckpt-")
    try:
        store = CheckpointStore(directory, keep=3)
        rng = np.random.default_rng(seed)
        for iteration in (1, 2):
            store.save(TrainingCheckpoint(
                iteration=iteration,
                module_state={"w": rng.normal(size=8)},
                loss_history=[0.5, 0.25],
            ))
        latest = store.latest_path()
        # Flip one byte in the middle: the archive may still parse, but
        # the sha256 sidecar must not let it load.
        with open(latest, "r+b") as fh:
            fh.seek(os.path.getsize(latest) // 2)
            byte = fh.read(1)
            fh.seek(-1, os.SEEK_CUR)
            fh.write(bytes([byte[0] ^ 0xFF]))
        loaded = store.load_latest()
        check("fallback-to-previous-good",
              loaded is not None and loaded.iteration == 1,
              f"loaded iteration "
              f"{None if loaded is None else loaded.iteration}")
        check("damaged-file-quarantined",
              store.quarantined == [latest]
              and os.path.exists(latest + QUARANTINE_SUFFIX)
              and not os.path.exists(latest),
              f"quarantined={store.quarantined}")
        check("sidecar-quarantined-too",
              not os.path.exists(latest + CHECKSUM_SUFFIX),
              "damaged checkpoint's sidecar left in rotation")
        check("no-partial-files",
              not any(name.startswith(".tmp")
                      for name in os.listdir(directory)),
              f"stray files: {sorted(os.listdir(directory))}")
        check("rotation-skips-quarantined",
              [os.path.basename(p) for p in store.paths()]
              == ["state-00000001.npz"],
              f"paths={[os.path.basename(p) for p in store.paths()]}")
        return {"quarantined": [os.path.basename(p)
                                for p in store.quarantined]}
    finally:
        shutil.rmtree(directory, ignore_errors=True)


# ----------------------------------------------------------------------
# Serving-layer scenario
# ----------------------------------------------------------------------

@_scenario(
    "serving-burst",
    "slow-decode burst trips the breaker; shed requests degrade (never "
    "hang); after the cool-down the half-open probe re-closes it",
)
def _run_serving_burst(seed, check):
    import numpy as np

    from repro.data.tags import TagScheme
    from repro.data.vocab import CharVocabulary, Vocabulary
    from repro.models.backbone import BackboneConfig, CNNBiGRUCRF
    from repro.reliability.faults import FaultInjector
    from repro.serving import (
        CLOSED, HALF_OPEN, OPEN, ManualClock, ServiceConfig, TaggingService,
    )

    tokens = ["the", "visited", "today", "reports", "arrived"]
    rng = np.random.default_rng(seed)
    scheme = TagScheme(("0", "1"))
    model = CNNBiGRUCRF(Vocabulary(tokens), CharVocabulary(tokens),
                        scheme.num_tags, BackboneConfig(), rng,
                        tag_names=scheme.tags)
    clock = ManualClock()
    injector = FaultInjector(slow_decode_s=0.3, slow_decode_for=2,
                             clock=clock)
    service = TaggingService(
        model, scheme,
        ServiceConfig(default_deadline_ms=100, breaker_threshold=2,
                      breaker_cooldown_ms=1000),
        clock=clock, fault_injector=injector,
    )
    first = service.tag(["the"])
    second = service.tag(["visited"])
    check("overruns-answered-not-hung",
          first.ok and "overran" in (first.note or "")
          and second.ok and "overran" in (second.note or ""),
          f"notes {first.note!r}, {second.note!r}")
    check("burst-trips-breaker",
          service.breaker.state == OPEN and service.breaker.trips == 1,
          f"state={service.breaker.state} trips={service.breaker.trips}")
    shed = service.tag(["today"])
    check("open-breaker-sheds-degraded",
          shed.ok and shed.degraded and "breaker" in (shed.note or ""),
          f"note={shed.note!r}")
    clock.advance(1.1)
    check("cooldown-half-opens",
          service.breaker.state == HALF_OPEN,
          f"state={service.breaker.state}")
    probe = service.tag(["arrived"])
    check("probe-recloses-breaker",
          probe.ok and not probe.degraded
          and service.breaker.state == CLOSED,
          f"state={service.breaker.state} note={probe.note!r}")
    return {"trips": service.breaker.trips, "stats": dict(service.stats)}


@_scenario(
    "gateway-replica-kill",
    "SIGKILL gateway replicas under live, traced traffic: every admitted "
    "request is answered bit-identically to a single-process oracle, "
    "none lost or duplicated, every answer stitches into one complete "
    "cross-process trace, and the flight recorder dumps on each kill",
)
def _run_gateway_replica_kill(seed, check):
    import shutil
    import tempfile

    import numpy as np

    from repro import obs
    from repro.data.tags import TagScheme
    from repro.data.vocab import CharVocabulary, Vocabulary
    from repro.models.backbone import BackboneConfig, CNNBiGRUCRF
    from repro.obs.report import assemble_traces
    from repro.obs.reqtrace import flight_recorder, request_tracing
    from repro.serving import ServiceConfig, TaggingService
    from repro.serving.gateway import GatewayConfig, ShardedGateway
    from repro.serving.loadgen import synthetic_requests
    from repro.serving.replica import fork_available

    pool = ("the", "visited", "today", "reports", "arrived",
            "Kavox", "Zuqev", "Mirelle")
    scheme = TagScheme(("0", "1"))
    model = CNNBiGRUCRF(Vocabulary(pool), CharVocabulary(pool),
                        scheme.num_tags, BackboneConfig(),
                        np.random.default_rng(seed), tag_names=scheme.tags)

    def factory(replica_id):
        return TaggingService(model, scheme, ServiceConfig(max_pending=512))

    # Replicas are clones of one fork-inherited model, so any replica's
    # answer must match this single-process oracle bit for bit.
    oracle = factory(-1)
    requests = synthetic_requests(48, seed=seed, pool=pool)
    chaos_rng = np.random.default_rng((seed, 8317))
    kill_at = set(int(i) for i in
                  chaos_rng.choice(np.arange(6, 42), size=3, replace=False))
    backend = "process" if fork_available() else "in-process"
    tmpdir = tempfile.mkdtemp(prefix="chaos-trace-")
    telemetry_path = os.path.join(tmpdir, "telemetry.jsonl")
    kills = 0
    tickets: list[int] = []
    results: dict[int, object] = {}
    deliveries: dict[int, int] = {}

    def absorb(batch: dict) -> None:
        for ticket, routed in batch.items():
            results[ticket] = routed
            deliveries[ticket] = deliveries.get(ticket, 0) + 1

    try:
        with obs.telemetry_session(telemetry_path), request_tracing(), \
                flight_recorder(tmpdir):
            gateway = ShardedGateway(
                factory,
                GatewayConfig(replicas=3, max_shard_queue=256,
                              breaker_cooldown_ms=50.0, seed=seed),
                backend=backend,
                telemetry_path=telemetry_path,
            )
            try:
                for i, toks in enumerate(requests):
                    tickets.append(gateway.submit(toks))
                    gateway.pump()
                    absorb(gateway.collect())
                    if i in kill_at:
                        # Only a live, ready replica is a meaningful target.
                        live = [s["replica"]
                                for s in gateway.health()["per_replica"]
                                if s["alive"] and s["state"] == "ready"]
                        if live:
                            victim = live[int(chaos_rng.integers(len(live)))]
                            gateway.kill_replica(victim)
                            kills += 1
                absorb(gateway.drain(timeout_s=60.0))
                report = gateway.report
            finally:
                gateway.shutdown()
        # Session closed: stitch the main stream with every replica
        # sibling file and check the traces (kill forensics included).
        traces = assemble_traces(obs.load_events(telemetry_path))
        by_id = {entry["trace"]: entry for entry in traces}
        flights = sorted(name for name in os.listdir(tmpdir)
                         if name.startswith("flight-"))
    finally:
        shutil.rmtree(tmpdir, ignore_errors=True)

    check("kills-actually-injected", kills >= 2, f"only {kills} kill(s)")
    untraced = [t for t, r in results.items()
                if getattr(r, "trace", None) is None]
    check("every-answer-carries-a-trace", results and not untraced,
          f"{len(untraced)} answer(s) without a trace id: {untraced[:5]}")
    broken = [
        t for t, r in results.items()
        if getattr(r, "trace", None) is not None
        and not by_id.get(r.trace, {}).get("complete", False)
    ]
    check("every-trace-stitched-complete", not broken,
          f"{len(broken)} trace(s) with gaps or no terminal hop: "
          f"{broken[:5]}")
    check("no-orphan-traces",
          all(entry["rooted"] for entry in traces),
          f"orphans: {[e['trace'] for e in traces if not e['rooted']][:5]}")
    served_traces = [
        by_id[r.trace] for r in results.values()
        if r.replica is not None and getattr(r, "trace", None) in by_id
    ]
    check("traces-span-processes",
          backend != "process"
          or any(len(entry["sources"]) >= 2 for entry in served_traces),
          "no served trace stitches hops from more than one stream")
    check("flight-recorder-dumped-on-kill",
          kills == 0 or bool(flights),
          f"{kills} kill(s) but no flight-<pid>.jsonl dump")
    check("no-request-lost",
          set(tickets) == set(results),
          f"{len(tickets) - len(results)} ticket(s) unanswered")
    check("no-duplicate-deliveries",
          all(count == 1 for count in deliveries.values()),
          f"duplicated: {[t for t, c in deliveries.items() if c != 1]}")
    check("every-admitted-request-completed",
          report.completed == report.admitted,
          f"admitted={report.admitted} completed={report.completed}")
    served = [(t, r) for t, r in results.items() if r.replica is not None]
    mismatched = [
        t for t, r in served
        if not r.result.ok
        or r.result.spans != oracle.tag(list(requests[t])).spans
    ]
    check("bit-identical-to-oracle",
          served and not mismatched,
          f"{len(mismatched)} of {len(served)} served differ: "
          f"{mismatched[:5]}")
    check("report-accounts-every-kill",
          report.deaths == kills and report.rebuilds == kills,
          f"kills={kills} deaths={report.deaths} "
          f"rebuilds={report.rebuilds}")
    # A kill against a freshly rebuilt replica whose breaker is still
    # open from the previous kill re-records the failure without a new
    # transition, so transitions need not reach ``kills`` — but a kill
    # storm must leave *some* breaker activity behind.
    check("breaker-transitions-recorded",
          kills == 0 or report.breaker_transitions >= 1,
          f"transitions={report.breaker_transitions} after {kills} kills")
    check("sheds-answered-not-dropped",
          all(not r.result.ok for t, r in results.items()
              if r.replica is None),
          "a shed ticket carried a served result")
    return {"backend": backend, "kills": kills, "traces": len(traces),
            "flight_dumps": len(flights), **report.summary()}


@_scenario(
    "overload-storm",
    "mixed-priority open-loop burst over slow-decode replicas: the "
    "brownout ladder escalates (batch shed first, interactive last), "
    "retries stay inside the token budget, and full Viterbi fidelity — "
    "bit-identical to a single-process oracle — resumes after the storm",
)
def _run_overload_storm(seed, check):
    import numpy as np

    from repro.data.tags import TagScheme
    from repro.data.vocab import CharVocabulary, Vocabulary
    from repro.models.backbone import BackboneConfig, CNNBiGRUCRF
    from repro.reliability.faults import FaultInjector
    from repro.serving import (
        BATCH, INTERACTIVE, STANDARD, ManualClock, OverloadConfig,
        ServiceConfig, TaggingService, assign_priorities,
    )
    from repro.serving.gateway import GatewayConfig, ShardedGateway
    from repro.serving.loadgen import run_load, synthetic_requests

    pool = ("the", "visited", "today", "reports", "arrived",
            "Kavox", "Zuqev", "Mirelle")
    scheme = TagScheme(("0", "1"))
    model = CNNBiGRUCRF(Vocabulary(pool), CharVocabulary(pool),
                        scheme.num_tags, BackboneConfig(),
                        np.random.default_rng(seed), tag_names=scheme.tags)
    clock = ManualClock()
    ocfg = OverloadConfig(
        codel_target_ms=40.0, codel_interval_ms=100.0,
        ladder_interval_ms=100.0, escalate_miss_rate=0.4,
        recover_miss_rate=0.1, recover_intervals=1,
        initial_inflight=4, max_inflight=8,
        retry_ratio=0.1, retry_floor=1.0, retry_cap=4.0,
    )
    injectors: dict[int, FaultInjector] = {}

    def factory(replica_id):
        # Each replica decodes 60 ms per Viterbi attempt for its first 30
        # attempts (the storm), then runs clean — against a 25 ms deadline
        # every full-fidelity decode during the storm is a miss.  The
        # binary breaker is parked out of the way so the *ladder* is the
        # control under test.
        injector = FaultInjector(slow_decode_s=0.06, slow_decode_for=30,
                                 clock=clock)
        injectors[replica_id] = injector
        return TaggingService(
            model, scheme,
            ServiceConfig(default_deadline_ms=25, max_pending=64,
                          breaker_threshold=1000, overload=ocfg),
            clock=clock, fault_injector=injector,
        )

    # Undegraded answers must match this fault-free, deadline-free twin.
    oracle = TaggingService(model, scheme)
    requests = synthetic_requests(120, seed=seed, pool=pool)
    priorities = assign_priorities(
        len(requests),
        {INTERACTIVE: 0.25, STANDARD: 0.4, BATCH: 0.35}, seed=seed,
    )
    gateway = ShardedGateway(
        factory,
        GatewayConfig(replicas=2, max_shard_queue=128,
                      hedge_after_ms=50.0, overload=ocfg),
        backend="in-process", clock=clock,
        service_time_s=lambda tokens, ticket: 0.08,
    )
    try:
        storm = run_load(gateway, requests, model="open", rate_rps=300.0,
                         seed=seed, priorities=priorities)
        peak = gateway.health().get("overload", {})
        peak_level = max(
            (ladder["max_level"] for ladder in peak.get("ladders", ())),
            default=0,
        )

        # Calm phase: injectors are spent, so windows run clean; drive
        # light probe traffic until every replica ladder steps back to 0.
        probes = synthetic_requests(8, seed=seed + 1, pool=pool)
        recovered = False
        for _ in range(300):
            snap = gateway.health().get("overload", {})
            ladders = snap.get("ladders", ())
            if ladders and all(l["level"] == 0 for l in ladders):
                recovered = True
                break
            clock.advance(0.12)
            gateway.tag_many(probes, priority=INTERACTIVE, timeout_s=30.0)

        # Full-fidelity check: fresh requests, no storm, no degradation.
        finale = synthetic_requests(12, seed=seed + 2, pool=pool)
        answers = gateway.tag_many(finale, deadline_ms=None,
                                   priority=INTERACTIVE, timeout_s=60.0)
        report = gateway.report
    finally:
        gateway.shutdown()

    check("storm-misses-injected",
          all(inj.decode_calls >= inj.slow_decode_for
              for inj in injectors.values()),
          f"decode calls per replica: "
          f"{ {i: inj.decode_calls for i, inj in injectors.items()} }")
    check("ladder-escalated", peak_level >= 3,
          f"peak brownout level {peak_level} (batch shed starts at 3)")
    check("ladder-fully-recovered", recovered,
          f"final ladders: {peak.get('ladders')}")
    per = storm.per_priority or {}
    batch = per.get(BATCH, {})
    interactive = per.get(INTERACTIVE, {})
    check("storm-answered-every-ticket",
          storm.offered == len(requests)
          and (storm.completed + storm.shed + storm.rejected
               + storm.expired) == storm.offered,
          f"offered={storm.offered} completed={storm.completed} "
          f"shed={storm.shed} rejected={storm.rejected} "
          f"expired={storm.expired}")
    check("no-priority-inversion",
          batch.get("shed", 0) > 0
          and interactive.get("completed", 0) > 0
          and batch.get("shed_rate", 0.0)
          >= interactive.get("shed_rate", 1.0),
          f"batch shed_rate={batch.get('shed_rate')} "
          f"interactive shed_rate={interactive.get('shed_rate')}")
    check("interactive-p99-bounded",
          interactive.get("p99_ms", float("inf")) <= 2500.0,
          f"interactive p99 <= {interactive.get('p99_ms')} ms")
    budget_cap = ocfg.retry_floor + ocfg.retry_ratio * report.completed
    check("retry-volume-under-budget",
          report.hedges <= budget_cap + 1e-9,
          f"hedges={report.hedges} cap={budget_cap:.1f} "
          f"(completed={report.completed})")
    check("hedges-actually-rationed", report.hedges_denied > 0,
          f"hedges_denied={report.hedges_denied}")
    check("every-admitted-request-completed",
          report.completed == report.admitted,
          f"admitted={report.admitted} completed={report.completed}")
    mismatched = [
        i for i, (toks, res) in enumerate(zip(finale, answers))
        if not res.ok or res.degraded
        or res.spans != oracle.tag(list(toks)).spans
    ]
    check("full-fidelity-resumes-bit-identical",
          not mismatched,
          f"{len(mismatched)} of {len(finale)} post-storm answers "
          f"degraded or differ from oracle: {mismatched}")
    return {
        "peak_level": peak_level,
        "storm": storm.summary(),
        **report.summary(),
    }


@_scenario(
    "trace-determinism",
    "two same-seed traced runs on a manual clock, hedges and a replica "
    "kill included: every request assembles into one complete trace, "
    "byte-identical across the runs, and 'repro obs trace' renders it",
)
def _run_trace_determinism(seed, check):
    import json
    import shutil
    import tempfile

    import numpy as np

    from repro import obs
    from repro.data.tags import TagScheme
    from repro.data.vocab import CharVocabulary, Vocabulary
    from repro.models.backbone import BackboneConfig, CNNBiGRUCRF
    from repro.obs.report import assemble_traces, render_trace
    from repro.obs.reqtrace import flight_recorder, request_tracing
    from repro.serving import ManualClock, ServiceConfig, TaggingService
    from repro.serving.gateway import GatewayConfig, ShardedGateway
    from repro.serving.loadgen import synthetic_requests

    pool = ("the", "visited", "today", "reports", "arrived",
            "Kavox", "Zuqev", "Mirelle")
    scheme = TagScheme(("0", "1"))
    model = CNNBiGRUCRF(Vocabulary(pool), CharVocabulary(pool),
                        scheme.num_tags, BackboneConfig(),
                        np.random.default_rng(seed), tag_names=scheme.tags)
    requests = synthetic_requests(24, seed=seed, pool=pool)

    def run_once(tmpdir):
        # One manual clock drives the gateway, every replica service
        # *and* the telemetry session, so hop timestamps, queue waits
        # and latencies are pure functions of the schedule below.
        clock = ManualClock()

        def factory(replica_id):
            return TaggingService(model, scheme, ServiceConfig(),
                                  clock=clock)

        path = os.path.join(tmpdir, "telemetry.jsonl")
        with obs.telemetry_session(path, clock=clock), \
                request_tracing(), flight_recorder(tmpdir):
            gateway = ShardedGateway(
                factory,
                GatewayConfig(replicas=2, hedge_after_ms=40.0,
                              breaker_cooldown_ms=50.0, seed=seed),
                backend="in-process", clock=clock,
                # Every 7th ticket is slow enough to hedge.
                service_time_s=(lambda tokens, ticket:
                                0.2 if ticket % 7 == 3 else 0.02),
            )
            results = {}
            try:
                for i, toks in enumerate(requests):
                    gateway.submit(toks)
                    gateway.pump()
                    clock.advance(0.01)
                    results.update(gateway.collect())
                    if i == 9:
                        gateway.kill_replica(0)
                results.update(gateway.drain(timeout_s=30.0))
                report = gateway.report
            finally:
                gateway.shutdown()
        traces = assemble_traces(obs.load_events(path))
        flights = sorted(name for name in os.listdir(tmpdir)
                         if name.startswith("flight-"))
        return results, traces, report, flights

    dir_a = tempfile.mkdtemp(prefix="chaos-trace-a-")
    dir_b = tempfile.mkdtemp(prefix="chaos-trace-b-")
    try:
        results_a, traces_a, report_a, flights_a = run_once(dir_a)
        results_b, traces_b, _report_b, _flights_b = run_once(dir_b)
    finally:
        shutil.rmtree(dir_a, ignore_errors=True)
        shutil.rmtree(dir_b, ignore_errors=True)

    by_id = {entry["trace"]: entry for entry in traces_a}
    check("every-request-answered",
          len(results_a) == len(requests),
          f"{len(results_a)} answer(s) for {len(requests)} requests")
    broken = [
        t for t, r in results_a.items()
        if getattr(r, "trace", None) is None
        or not by_id.get(r.trace, {}).get("complete", False)
    ]
    check("every-request-traced-complete", not broken,
          f"{len(broken)} answer(s) without a complete trace: "
          f"{broken[:5]}")
    check("hedges-traced", report_a.hedges >= 1
          and any(h.get("hop") == "hedge"
                  for e in traces_a for h in e["hops"]),
          f"hedges={report_a.hedges}, no hedge hop in any trace")
    check("kill-dumped-flight", bool(flights_a),
          "replica kill left no flight-<pid>.jsonl dump")
    check("traces-byte-identical-across-runs",
          json.dumps(traces_a, sort_keys=True)
          == json.dumps(traces_b, sort_keys=True),
          "same-seed runs assembled different traces")
    rendered = [render_trace(by_id[r.trace]) for r in results_a.values()
                if getattr(r, "trace", None) in by_id]
    check("every-trace-renders",
          rendered and all(text.startswith("trace ") for text in rendered),
          f"{len(rendered)} rendered")
    return {
        "requests": len(requests),
        "traces": len(traces_a),
        "hedges": report_a.hedges,
        "flight_dumps": len(flights_a),
    }


# ----------------------------------------------------------------------
# Persistent-store scenarios (repro.store)
# ----------------------------------------------------------------------

@_scenario(
    "store-corruption",
    "persistent store warmed by evaluation, then bit-flipped on disk: "
    "the damaged segment is quarantined, every lookup degrades to "
    "recompute, and scores stay bit-identical to the store-off run",
)
def _run_store_corruption(seed, check):
    import shutil
    import tempfile

    from repro.data.synthetic import generate_dataset
    from repro.data.vocab import CharVocabulary, Vocabulary
    from repro.experiments.configs import SCALES
    from repro.meta.evaluate import (
        build_method, evaluate_method, fixed_episodes,
    )
    from repro.reliability.faults import FaultInjector
    from repro.store import ContentStore, store_session
    from repro.store.segment import RECORD_HEADER_SIZE, SEGMENT_MAGIC

    dataset = generate_dataset("OntoNotes", scale=0.02, seed=seed % 97)
    half = len(dataset) // 2
    train, test = dataset[:half], dataset[half:]
    scale = SCALES["smoke"]
    word_vocab = Vocabulary.from_datasets([train])
    char_vocab = CharVocabulary.from_datasets([train])
    episodes = fixed_episodes(test, scale.n_way, 1, 3, seed=5,
                              query_size=scale.query_size)

    def fresh_adapter():
        return build_method("FewNER", word_vocab, char_vocab,
                            scale.n_way, scale.method_config)

    directory = tempfile.mkdtemp(prefix="chaos-store-")
    try:
        baseline = evaluate_method(fresh_adapter(), episodes, workers=0)
        with store_session(directory) as store:
            cold = evaluate_method(fresh_adapter(), episodes, workers=0)
            cold_counters = dict(store.counters)
        check("cold-run-populates-store", cold_counters["puts"] >= 2,
              f"counters={cold_counters}")
        check("cold-score-parity",
              cold.episode_scores == baseline.episode_scores,
              f"cold {cold.episode_scores} != "
              f"store-off {baseline.episode_scores}")
        # Flip a byte inside the *first* record's payload: interior
        # damage, unrecoverable by truncation — the segment must be
        # quarantined whole at next open.
        segments = sorted(
            os.path.join(directory, "segments", name)
            for name in os.listdir(os.path.join(directory, "segments"))
            if name.endswith(".seg")
        )
        FaultInjector.flip_byte(
            segments[0], len(SEGMENT_MAGIC) + RECORD_HEADER_SIZE + 1
        )
        with store_session(directory) as store:
            poisoned = evaluate_method(fresh_adapter(), episodes, workers=0)
            stats = store.store.stats()
            poisoned_counters = dict(store.counters)
        check("poisoned-score-parity",
              poisoned.episode_scores == baseline.episode_scores,
              f"poisoned {poisoned.episode_scores} != "
              f"store-off {baseline.episode_scores}")
        check("damaged-segment-quarantined",
              stats["quarantined_segments"] == 1
              and len(stats["quarantined_files"]) == 1
              and not os.path.exists(segments[0]),
              f"stats={stats}")
        check("no-store-error-escaped", poisoned_counters["errors"] == 0,
              f"counters={poisoned_counters}")
        check("store-repopulated-after-quarantine",
              poisoned_counters["puts"] >= 2, f"counters={poisoned_counters}")
        verify = ContentStore(directory).verify()
        check("post-recovery-verify-clean", not verify["bad"],
              f"verify={verify}")
        return {
            "f1": baseline.f1,
            "cold": cold_counters,
            "poisoned": poisoned_counters,
            "quarantined": stats["quarantined_files"],
        }
    finally:
        shutil.rmtree(directory, ignore_errors=True)


@_scenario(
    "store-crash-mid-write",
    "writer torn mid-append while serving: requests keep being answered "
    "bit-identically to a store-off oracle with none failed, and the "
    "next open truncates the torn tail and serves the surviving records",
)
def _run_store_crash_mid_write(seed, check):
    import shutil
    import tempfile

    import numpy as np

    from repro.data.tags import TagScheme
    from repro.data.vocab import CharVocabulary, Vocabulary
    from repro.models.backbone import BackboneConfig, CNNBiGRUCRF
    from repro.reliability.faults import FaultInjector
    from repro.serving import TaggingService
    from repro.serving.loadgen import synthetic_requests
    from repro.store import store_session

    pool = ("the", "visited", "today", "reports", "arrived",
            "Kavox", "Zuqev", "Mirelle")
    scheme = TagScheme(("0", "1"))
    model = CNNBiGRUCRF(Vocabulary(pool), CharVocabulary(pool),
                        scheme.num_tags, BackboneConfig(),
                        np.random.default_rng(seed), tag_names=scheme.tags)
    requests = synthetic_requests(16, seed=seed, pool=pool)
    oracle = [TaggingService(model, scheme).tag(list(toks))
              for toks in requests]

    def serve_all():
        service = TaggingService(model, scheme)
        answers = [service.tag(list(toks)) for toks in requests]
        return service, answers

    def parity(answers):
        return [
            i for i, (got, want) in enumerate(zip(answers, oracle))
            if not got.ok or got.degraded or got.spans != want.spans
        ]

    directory = tempfile.mkdtemp(prefix="chaos-store-")
    try:
        injector = FaultInjector(store_torn_write_at=(2,))
        with store_session(directory, fault_injector=injector,
                           max_errors=4) as store:
            _svc, crashed = serve_all()
            crashed_counters = dict(store.counters)
            disabled = store.disabled
        check("writer-crash-actually-injected",
              crashed_counters["errors"] >= 1, f"counters={crashed_counters}")
        check("crashed-run-answers-bit-identical", not parity(crashed),
              f"mismatched requests {parity(crashed)[:5]}")
        check("faulting-store-disables-itself", disabled,
              f"errors={crashed_counters['errors']} never hit max_errors")
        with store_session(directory) as store:
            svc, warm = serve_all()
            warm_counters = dict(store.counters)
            recovery = dict(store.store.counters)
            stats = store.store.stats()
        check("torn-tail-truncated-on-reopen",
              recovery["truncated_tails"] == 1
              and recovery["quarantined_segments"] == 0,
              f"recovery={recovery}")
        check("surviving-records-served",
              warm_counters["hits"] >= 1 and svc.stats["store_hits"] >= 1,
              f"counters={warm_counters} stats={svc.stats}")
        check("warm-run-answers-bit-identical", not parity(warm),
              f"mismatched requests {parity(warm)[:5]}")
        check("store-writable-after-recovery",
              warm_counters["puts"] >= 1 and warm_counters["errors"] == 0,
              f"counters={warm_counters}")
        return {
            "requests": len(requests),
            "crashed": crashed_counters,
            "warm": warm_counters,
            "recovery": recovery,
            "records": stats["records"],
        }
    finally:
        shutil.rmtree(directory, ignore_errors=True)


# ----------------------------------------------------------------------
# Harness
# ----------------------------------------------------------------------

def run_scenario(name: str, seed: int = 0) -> ScenarioResult:
    """Run one named scenario; never raises for scenario failures.

    Underscores in ``name`` are treated as dashes, so
    ``gateway_replica_kill`` and ``gateway-replica-kill`` are the same
    scenario.
    """
    name = name.replace("_", "-")
    if name not in SCENARIOS:
        raise KeyError(
            f"unknown chaos scenario {name!r}; "
            f"available: {', '.join(SCENARIOS)}"
        )
    from repro.perf.fastpath import DEFAULT_FASTPATH_STATE, fastpath_state

    scenario = SCENARIOS[name]
    invariants: list[Invariant] = []

    def check(label: str, ok, detail: str = "") -> None:
        invariants.append(Invariant(label, bool(ok), str(detail)))

    t0 = time.perf_counter()
    error = None
    details: dict = {}
    try:
        details = scenario.run(seed, check) or {}
    except Exception as exc:  # scenario bodies must not take the run down
        error = f"{type(exc).__name__}: {exc}"
    state = fastpath_state()
    check("fastpath-defaults-intact", state == DEFAULT_FASTPATH_STATE,
          f"leaked state {state}")
    return ScenarioResult(
        scenario=name, seed=int(seed), invariants=tuple(invariants),
        details=details, wall_time_s=time.perf_counter() - t0, error=error,
    )


def run_soak(scenarios=None, time_budget_s: float | None = 60.0,
             max_rounds: int | None = None, seed: int = 0) -> SoakReport:
    """Loop the scenario suite under a wall-clock / round budget.

    At least one full round always completes, regardless of budget — a
    fixed-seed smoke soak therefore covers every scenario exactly once
    and is deterministic.  After each completed round the budget is
    consulted: the soak stops once ``time_budget_s`` is spent or
    ``max_rounds`` rounds are done, whichever comes first.  Per-run
    seeds are derived from ``seed`` and the round index so successive
    rounds exercise different fault schedules.
    """
    names = ([n.replace("_", "-") for n in scenarios] if scenarios
             else list(SCENARIOS))
    unknown = [n for n in names if n not in SCENARIOS]
    if unknown:
        raise KeyError(
            f"unknown chaos scenario(s) {unknown}; "
            f"available: {', '.join(SCENARIOS)}"
        )
    if time_budget_s is None and max_rounds is None:
        raise ValueError("need a time budget or a round limit (or both)")
    t0 = time.perf_counter()
    deadline = None if time_budget_s is None else t0 + float(time_budget_s)
    results: list[ScenarioResult] = []
    rounds = 0
    budget_exhausted = False
    while True:
        round_seed = int(seed) + 101 * rounds
        for offset, name in enumerate(names):
            results.append(run_scenario(name, seed=round_seed + offset))
        rounds += 1
        if max_rounds is not None and rounds >= max_rounds:
            break
        if deadline is not None and time.perf_counter() >= deadline:
            budget_exhausted = True
            break
    return SoakReport(
        seed=int(seed), rounds=rounds, results=results,
        wall_time_s=time.perf_counter() - t0,
        budget_exhausted=budget_exhausted,
    )
