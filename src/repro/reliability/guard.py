"""Guarded optimization: anomaly detection around every optimizer step.

Second-order meta-gradients through a CRF are numerically fragile — a
single divergent inner loop can write NaN into θ and silently poison
every score computed afterwards.  :class:`GuardedStep` sits between the
backward pass and ``optimizer.step()``: it inspects the loss and the
global gradient norm, applies the configured clip on healthy steps, and
on anomalies *skips* the update and escalates:

1. **skip** — drop the gradients, keep the parameters (always);
2. **rollback** — after ``rollback_after`` consecutive anomalies,
   restore the last known-good parameter snapshot;
3. **LR backoff** — after ``backoff_after``, multiply the optimizer LR
   by ``backoff_factor``;
4. **reseed** — after ``reseed_after``, invoke the caller's reseed hook
   (typically re-seeding the episode sampler away from a pathological
   task sequence);
5. **abort** — after ``abort_after``, raise :class:`TrainingDiverged`
   carrying the full :class:`AnomalyReport`.

Every event is recorded in the report so a run that needed recovery is
distinguishable from one that never misbehaved.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.nn.optim import Optimizer, clip_grad_norm


@dataclass(frozen=True)
class AnomalyPolicy:
    """Thresholds and escalation schedule for :class:`GuardedStep`.

    The escalation counters are compared against the number of
    *consecutive* anomalous steps; one healthy step resets the count.
    """

    #: Gradient clip applied on healthy steps (the paper uses 5.0).
    grad_clip: float = 5.0
    #: A pre-clip gradient norm above this is treated as an explosion.
    explode_norm: float = 1e4
    #: An absolute loss above this is anomalous even if finite.
    max_loss: float = 1e6
    rollback_after: int = 2
    backoff_after: int = 3
    backoff_factor: float = 0.5
    reseed_after: int = 4
    abort_after: int = 6
    #: Snapshot parameters for rollback every N healthy steps.
    snapshot_every: int = 1

    def __post_init__(self):
        if self.abort_after < 1:
            raise ValueError("abort_after must be >= 1")
        if not 0 < self.backoff_factor < 1:
            raise ValueError("backoff_factor must be in (0, 1)")
        if self.snapshot_every < 1:
            raise ValueError("snapshot_every must be >= 1")


@dataclass(frozen=True)
class AnomalyEvent:
    """One anomalous optimizer step and the recovery actions taken."""

    iteration: int
    reason: str
    loss: float
    grad_norm: float
    actions: tuple[str, ...]


@dataclass
class AnomalyReport:
    """Accumulated anomaly events for one training run."""

    events: list[AnomalyEvent] = field(default_factory=list)
    steps_taken: int = 0
    steps_skipped: int = 0

    def record(self, event: AnomalyEvent) -> None:
        self.events.append(event)

    @property
    def clean(self) -> bool:
        return not self.events

    def action_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for event in self.events:
            for action in event.actions:
                counts[action] = counts.get(action, 0) + 1
        return counts

    def summary(self) -> dict:
        """JSON-serialisable digest for logs and journals."""
        return {
            "steps_taken": self.steps_taken,
            "steps_skipped": self.steps_skipped,
            "anomalies": len(self.events),
            "actions": self.action_counts(),
            "reasons": sorted({e.reason for e in self.events}),
        }

    def render(self) -> str:
        if self.clean:
            return (f"anomaly report: clean "
                    f"({self.steps_taken} steps applied)")
        lines = [
            f"anomaly report: {len(self.events)} anomalous steps "
            f"({self.steps_taken} applied, {self.steps_skipped} skipped)"
        ]
        for e in self.events:
            acts = ",".join(e.actions)
            lines.append(
                f"  it={e.iteration} {e.reason} loss={e.loss:.3g} "
                f"|g|={e.grad_norm:.3g} -> {acts}"
            )
        return "\n".join(lines)


class TrainingDiverged(RuntimeError):
    """Training aborted after repeated unrecoverable anomalies."""

    def __init__(self, message: str, report: AnomalyReport):
        super().__init__(f"{message}\n{report.render()}")
        self.report = report


class GuardedStep:
    """Wrap an optimizer so anomalous updates never reach the parameters.

    Call :meth:`step` once per outer iteration *instead of*
    ``clip_grad_norm(...)`` + ``optimizer.step()``.  Returns ``True`` if
    the update was applied, ``False`` if it was skipped.
    """

    def __init__(self, optimizer: Optimizer, policy: AnomalyPolicy | None = None,
                 report: AnomalyReport | None = None, on_reseed=None,
                 injector=None):
        self.optimizer = optimizer
        self.params = optimizer.params
        self.policy = policy or AnomalyPolicy()
        self.report = report if report is not None else AnomalyReport()
        self.on_reseed = on_reseed
        self.injector = injector
        self.iteration = 0
        self._consecutive = 0
        self._snapshot: list[np.ndarray] | None = None
        self._since_snapshot = 0

    # ------------------------------------------------------------------
    def _grad_norm(self) -> float:
        total = 0.0
        for p in self.params:
            if p.grad is None:
                continue
            g = p.grad.data
            if not np.all(np.isfinite(g)):
                return float("nan")
            total += float((g * g).sum())
        return float(np.sqrt(total))

    def _diagnose(self, loss: float, norm: float) -> str | None:
        if not np.isfinite(loss):
            return "non-finite loss"
        if abs(loss) > self.policy.max_loss:
            return f"loss above {self.policy.max_loss:g}"
        if not np.isfinite(norm):
            return "non-finite gradient"
        if norm > self.policy.explode_norm:
            return f"gradient norm above {self.policy.explode_norm:g}"
        return None

    def _take_snapshot(self) -> None:
        self._snapshot = [p.data.copy() for p in self.params]
        self._since_snapshot = 0

    def _rollback(self) -> bool:
        if self._snapshot is None:
            return False
        for p, saved in zip(self.params, self._snapshot):
            p.data = saved.copy()
        return True

    # ------------------------------------------------------------------
    def step(self, loss: float) -> bool:
        """Validate gradients for ``loss``'s backward pass, then update."""
        from repro import obs

        iteration = self.iteration
        self.iteration += 1
        if self.injector is not None:
            self.injector.before_step(iteration, self.params)
        loss = float(loss)
        norm = self._grad_norm()
        reason = self._diagnose(loss, norm)
        if reason is None:
            if self._snapshot is None:
                self._take_snapshot()
            clip_grad_norm(self.params, self.policy.grad_clip)
            self.optimizer.step()
            self.report.steps_taken += 1
            obs.count("guard.steps_taken")
            self._consecutive = 0
            self._since_snapshot += 1
            if self._since_snapshot >= self.policy.snapshot_every:
                self._take_snapshot()
            return True

        # Anomalous: drop the gradients so nothing downstream reuses them.
        for p in self.params:
            p.grad = None
        self.report.steps_skipped += 1
        obs.count("guard.anomalies")
        obs.count("guard.steps_skipped")
        self._consecutive += 1
        actions = ["skip"]
        policy = self.policy
        if self._consecutive >= policy.rollback_after and self._rollback():
            actions.append("rollback")
        if self._consecutive >= policy.backoff_after:
            self.optimizer.lr *= policy.backoff_factor
            actions.append("lr_backoff")
        if self._consecutive == policy.reseed_after and self.on_reseed:
            self.on_reseed(self._consecutive)
            actions.append("reseed")
        abort = self._consecutive >= policy.abort_after
        if abort:
            actions.append("abort")
        self.report.record(
            AnomalyEvent(
                iteration=iteration, reason=reason, loss=loss,
                grad_norm=norm, actions=tuple(actions),
            )
        )
        obs.emit("guard.anomaly", iteration=iteration, reason=reason,
                 loss=loss, grad_norm=norm, actions=list(actions))
        if abort:
            raise TrainingDiverged(
                f"training diverged: {self._consecutive} consecutive "
                f"anomalous steps (last: {reason})",
                self.report,
            )
        return False
