"""Per-cell retry and wall-clock budget policy for table runs.

Long sweeps fail in two shapes: a method blows up (an exception or
:class:`~repro.reliability.guard.TrainingDiverged`) or a cell takes far
longer than planned.  :class:`CellPolicy` describes what the harness
may do about each: retry training with a deterministically perturbed
seed, and bound evaluation wall-clock with graceful degradation (report
the confidence interval over the episodes completed so far instead of
nothing).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CellPolicy:
    """How :func:`~repro.experiments.harness.run_adaptation` treats one cell."""

    #: Extra training attempts after the first failure (0 = fail fast).
    retries: int = 0
    #: Added to ``MethodConfig.seed`` on attempt ``i`` as
    #: ``i * seed_perturbation`` — a divergent trajectory usually is not
    #: divergent from a different initialisation/episode order.
    seed_perturbation: int = 1000
    #: Wall-clock budget (seconds) for one cell's *evaluation*; ``None``
    #: disables the limit.  When exceeded, the cell reports a CI over
    #: the episodes finished so far (at least ``min_episodes``).
    budget_seconds: float | None = None
    #: Episodes always evaluated even past the deadline, so a budgeted
    #: cell is never empty.
    min_episodes: int = 1

    def __post_init__(self):
        if self.retries < 0:
            raise ValueError(f"retries must be >= 0, got {self.retries}")
        if self.min_episodes < 1:
            raise ValueError(
                f"min_episodes must be >= 1, got {self.min_episodes}"
            )
        if self.budget_seconds is not None and self.budget_seconds <= 0:
            raise ValueError(
                f"budget_seconds must be positive, got {self.budget_seconds}"
            )

    def seed_for_attempt(self, base_seed: int, attempt: int) -> int:
        """Deterministic seed for retry number ``attempt`` (0 = first try)."""
        return base_seed + attempt * self.seed_perturbation
