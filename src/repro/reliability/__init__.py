"""Fault-tolerant training runtime.

Four cooperating pieces make long experiment sweeps survivable:

* :mod:`~repro.reliability.guard` — :class:`GuardedStep` protects every
  optimizer update against NaN/Inf losses and exploding gradients, with
  a skip → rollback → LR backoff → reseed → abort escalation ladder and
  a per-run :class:`AnomalyReport`;
* :mod:`~repro.reliability.checkpoint` — :class:`TrainingCheckpoint` and
  :class:`CheckpointStore` persist full training state (parameters,
  optimizer moments, RNG state, iteration, loss history) atomically with
  bounded retention, so ``Adapter.fit_resumable`` can continue a killed
  run mid-training;
* :mod:`~repro.reliability.journal` — :class:`RunJournal` is an
  append-only JSONL record of completed table cells keyed by
  ``(method, setting, k_shot)``; :func:`~repro.experiments.harness.run_adaptation`
  skips completed cells on resume and isolates per-method failures;
* :mod:`~repro.reliability.integrity` — the shared SHA-256 digest,
  atomic ``.sha256`` sidecar and ``*.quarantined`` rename primitives
  that both :class:`CheckpointStore` and the persistent
  embedding/adaptation store (:mod:`repro.store`) build on;
* :mod:`~repro.reliability.faults` — a deterministic, test-only
  :class:`FaultInjector` that corrupts gradients, raises mid-``fit``,
  crashes/hangs/corrupts executor workers, simulates crashes between
  table cells and truncates checkpoint files, so every recovery path is
  provable end-to-end;
* :mod:`~repro.reliability.chaos` — named cross-layer chaos scenarios
  (:data:`~repro.reliability.chaos.SCENARIOS`) with invariant checks,
  looped by :func:`~repro.reliability.chaos.run_soak` under a
  time/round budget (CLI: ``repro chaos soak``).

See ``docs/reliability.md`` and ``docs/chaos.md`` for policies, file
formats and semantics.
"""

from repro.reliability.guard import (
    AnomalyEvent,
    AnomalyPolicy,
    AnomalyReport,
    GuardedStep,
    TrainingDiverged,
)
from repro.reliability.checkpoint import (
    CheckpointStore,
    TrainingCheckpoint,
)
from repro.reliability.integrity import (
    CHECKSUM_SUFFIX,
    QUARANTINE_SUFFIX,
    IntegrityError,
    bytes_sha256,
    file_sha256,
    quarantine_file,
    verify_checksum_sidecar,
    write_checksum_sidecar,
)
from repro.reliability.journal import RunJournal
from repro.reliability.policy import CellPolicy
from repro.reliability.faults import FaultInjector, InjectedFault, SimulatedCrash
from repro.reliability.chaos import (
    SCENARIOS,
    ChaosScenario,
    Invariant,
    ScenarioResult,
    SoakReport,
    run_scenario,
    run_soak,
)

__all__ = [
    "AnomalyEvent",
    "AnomalyPolicy",
    "AnomalyReport",
    "GuardedStep",
    "TrainingDiverged",
    "CheckpointStore",
    "TrainingCheckpoint",
    "RunJournal",
    "CellPolicy",
    "CHECKSUM_SUFFIX",
    "QUARANTINE_SUFFIX",
    "IntegrityError",
    "bytes_sha256",
    "file_sha256",
    "quarantine_file",
    "verify_checksum_sidecar",
    "write_checksum_sidecar",
    "FaultInjector",
    "InjectedFault",
    "SimulatedCrash",
    "SCENARIOS",
    "ChaosScenario",
    "Invariant",
    "ScenarioResult",
    "SoakReport",
    "run_scenario",
    "run_soak",
]
