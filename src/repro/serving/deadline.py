"""Monotonic-clock request deadlines.

A :class:`Deadline` is an absolute expiry on a monotonic clock, created
from a relative budget (``Deadline.after_ms(50, clock)``).  It is passed
down the whole inference pipeline — queueing, encoding, per-sentence
decode — so every layer asks the same question ("is there budget left?")
against the same clock, instead of each layer re-measuring its own
elapsed time.

The clock is injectable: production uses :func:`time.monotonic`; tests
use a :class:`ManualClock` advanced explicitly (or by a
:class:`~repro.reliability.faults.FaultInjector` simulating slow
decodes), which makes every deadline path deterministic.
"""

from __future__ import annotations

import time
from typing import Callable

Clock = Callable[[], float]


class DeadlineExceeded(TimeoutError):
    """A hard budget check failed (see :meth:`Deadline.check`)."""


class ManualClock:
    """A test clock: returns ``now`` until :meth:`advance` moves it."""

    def __init__(self, start: float = 0.0):
        self.now = float(start)

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError(f"cannot move a clock backwards ({seconds})")
        self.now += seconds


class Deadline:
    """An absolute expiry instant on a monotonic clock.

    ``None`` budgets are modelled by simply not creating a deadline;
    callers treat ``deadline is None`` as unbounded.
    """

    __slots__ = ("_clock", "_expires_at")

    def __init__(self, budget_s: float, clock: Clock = time.monotonic):
        if budget_s < 0:
            raise ValueError(f"deadline budget must be >= 0, got {budget_s}")
        self._clock = clock
        self._expires_at = clock() + budget_s

    @classmethod
    def after_ms(cls, budget_ms: float, clock: Clock = time.monotonic) -> "Deadline":
        """A deadline ``budget_ms`` milliseconds from now."""
        return cls(budget_ms / 1000.0, clock=clock)

    def remaining(self) -> float:
        """Seconds of budget left (negative once expired)."""
        return self._expires_at - self._clock()

    @property
    def expired(self) -> bool:
        return self.remaining() <= 0

    def check(self, what: str = "request") -> None:
        """Raise :class:`DeadlineExceeded` if the budget is spent.

        For pipeline stages that cannot degrade (there is no cheaper
        answer to fall back to); stages with a degraded path test
        :attr:`expired` instead.
        """
        if self.expired:
            raise DeadlineExceeded(
                f"{what} exceeded its deadline by {-self.remaining():.4f}s"
            )

    def __repr__(self) -> str:
        return f"Deadline(remaining={self.remaining():.4f}s)"
