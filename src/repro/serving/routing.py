"""Consistent-hash request routing for the sharded gateway.

A :class:`HashRing` places ``virtual_nodes`` points per shard on a
2^64 ring, each derived from a keyed blake2b digest — fully
deterministic across processes and Python builds (no reliance on
``hash()`` randomisation).  :meth:`HashRing.preference` walks the ring
clockwise from a request key's position and yields every shard once, in
ring order: element 0 is the shard consistent hashing *wants* for the
key, the rest are the deterministic fallback order the gateway uses
when that shard is draining, dead, or breaker-open.

Consistent hashing gives the gateway two properties a modulo hash does
not:

* **Stability** — the same request key routes to the same replica run
  after run, which keeps replica-local caches (adaptation caches,
  OOV statistics) warm for repeat traffic;
* **Minimal disruption** — removing one shard only remaps the keys that
  shard owned; every other key keeps its replica.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_right
from typing import Iterable, Sequence

#: Unit separator: joins request tokens into one hash key without
#: colliding "ab"+"c" with "a"+"bc" (tokens never contain controls —
#: the sanitizer strips them — but routing must not assume that).
_SEP = "\x1f"


def request_key(tokens: Sequence[str]) -> str:
    """The routing key of a request: its tokens, order-sensitive."""
    return _SEP.join(str(t) for t in tokens)


def _point(label: str) -> int:
    """Deterministic 64-bit ring position for ``label``."""
    digest = hashlib.blake2b(label.encode("utf-8", "surrogatepass"),
                             digest_size=8)
    return int.from_bytes(digest.digest(), "big")


class HashRing:
    """A consistent-hash ring over ``shards`` integer shard ids."""

    def __init__(self, shards: Iterable[int], virtual_nodes: int = 16):
        if virtual_nodes < 1:
            raise ValueError(f"virtual_nodes must be >= 1, got {virtual_nodes}")
        self.shards = tuple(sorted(int(s) for s in shards))
        if not self.shards:
            raise ValueError("a hash ring needs at least one shard")
        if len(set(self.shards)) != len(self.shards):
            raise ValueError(f"duplicate shard ids: {self.shards}")
        self.virtual_nodes = int(virtual_nodes)
        points: list[tuple[int, int]] = []
        for shard in self.shards:
            for v in range(self.virtual_nodes):
                points.append((_point(f"shard-{shard}-vn-{v}"), shard))
        points.sort()
        self._points = points
        self._positions = [p for p, _s in points]

    # ------------------------------------------------------------------
    def lookup(self, key: str) -> int:
        """The shard owning ``key``: first ring point at or after it."""
        return self.preference(key)[0]

    def preference(self, key: str) -> tuple[int, ...]:
        """Every shard once, in clockwise ring order from ``key``.

        The fixed fallback sequence for one key: ``preference(key)[0]``
        is the consistent-hash owner; when the gateway must fail over,
        it takes the *next distinct* shard along the ring, so fallback
        assignments are as stable as primary ones.
        """
        start = bisect_right(self._positions, _point(key))
        n = len(self._points)
        seen: list[int] = []
        for i in range(n):
            shard = self._points[(start + i) % n][1]
            if shard not in seen:
                seen.append(shard)
                if len(seen) == len(self.shards):
                    break
        return tuple(seen)

    def __len__(self) -> int:
        return len(self.shards)

    def __repr__(self) -> str:
        return (f"HashRing(shards={self.shards}, "
                f"virtual_nodes={self.virtual_nodes})")
