"""Adaptive overload control for the serving fleet.

Four cooperating mechanisms, all deterministic and clock-injectable:

- **Priority classes** — every request carries one of ``interactive`` >
  ``standard`` > ``batch``.  Admission and shedding are weighted: when
  something must go, the lowest-priority, freshest work goes first.
- **CoDel queue discipline** (:class:`CoDelController`) — sheds by queue
  *staleness* (sojourn time above a target for a full interval) rather
  than only by depth, with the classic sqrt-law drop cadence.
- **AIMD concurrency limiter** (:class:`AIMDLimiter`) — per-replica
  in-flight cap grown additively on success and cut multiplicatively on
  observed congestion (deadline misses, sheds).
- **Retry budget** (:class:`RetryBudget`) — a token bucket fed by a
  fraction of recent successes; hedged retries are denied when the
  bucket is empty, failover reroutes overdraw it (zero-loss guarantee
  wins, but the overdraw is counted).
- **Brownout ladder** (:class:`BrownoutLadder`) — a single pressure
  level driven by a hysteresis controller on the deadline-miss rate.
  Each priority class maps the level to a serving mode: full Viterbi →
  greedy → store-cached-only → shed.  Batch degrades first, interactive
  last; recovery steps down one level per clean interval streak.

Everything in this module is pure bookkeeping over an injected
monotonic clock — no threads, no wall-clock reads — so overload
behaviour is exactly reproducible under ``ManualClock``.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from .deadline import Clock

# --------------------------------------------------------------------------
# Priority classes
# --------------------------------------------------------------------------

INTERACTIVE = "interactive"
STANDARD = "standard"
BATCH = "batch"

#: Highest to lowest priority.
PRIORITIES = (INTERACTIVE, STANDARD, BATCH)

#: Rank 0 is the most important class.
PRIORITY_RANK = {name: rank for rank, name in enumerate(PRIORITIES)}


def validate_priority(priority: str) -> str:
    if priority not in PRIORITY_RANK:
        raise ValueError(
            f"unknown priority {priority!r}; expected one of {PRIORITIES}")
    return priority


def parse_priority_mix(spec: str) -> Dict[str, float]:
    """Parse ``"interactive=0.2,standard=0.5,batch=0.3"`` into weights.

    Weights need not sum to one; they are normalised at assignment time.
    Omitted classes get weight zero.
    """
    mix = {name: 0.0 for name in PRIORITIES}
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        if "=" not in part:
            raise ValueError(f"bad priority-mix entry {part!r}; want name=weight")
        name, raw = part.split("=", 1)
        name = validate_priority(name.strip())
        weight = float(raw)
        if weight < 0:
            raise ValueError(f"priority weight must be >= 0, got {weight}")
        mix[name] = weight
    if not any(mix.values()):
        raise ValueError(f"priority mix {spec!r} has no positive weight")
    return mix


def assign_priorities(n: int, mix: Dict[str, float], seed: int = 0) -> List[str]:
    """Deterministically assign ``n`` priorities according to ``mix``.

    Uses largest-remainder apportionment followed by a seeded shuffle so
    the class counts are exact for the mix and the interleaving is
    reproducible.
    """
    import numpy as np

    total = sum(mix.get(name, 0.0) for name in PRIORITIES)
    if n <= 0 or total <= 0:
        return []
    ideal = {name: n * mix.get(name, 0.0) / total for name in PRIORITIES}
    counts = {name: int(math.floor(ideal[name])) for name in PRIORITIES}
    remainder = n - sum(counts.values())
    by_frac = sorted(PRIORITIES, key=lambda p: ideal[p] - counts[p], reverse=True)
    for name in by_frac[:remainder]:
        counts[name] += 1
    assigned: List[str] = []
    for name in PRIORITIES:
        assigned.extend([name] * counts[name])
    generator = np.random.default_rng((seed, 6173))
    generator.shuffle(assigned)
    return assigned


# --------------------------------------------------------------------------
# Brownout modes
# --------------------------------------------------------------------------

MODE_FULL = "full"
MODE_GREEDY = "greedy"
MODE_CACHED = "cached"
MODE_SHED = "shed"

#: Serving modes from best fidelity to none.
MODES = (MODE_FULL, MODE_GREEDY, MODE_CACHED, MODE_SHED)

#: Ladder steps between adjacent priority classes: batch reaches ``shed``
#: before standard leaves ``full``.
STEPS_PER_CLASS = len(MODES) - 1

#: Pressure at which even interactive traffic is shed.
MAX_PRESSURE = STEPS_PER_CLASS * len(PRIORITIES)


def mode_for(pressure: int, priority: str) -> str:
    """Map a ladder pressure level to the serving mode for ``priority``.

    Lower-priority classes absorb pressure first: at a given level the
    mode index for a class is the pressure minus a head start of
    ``STEPS_PER_CLASS`` per class above it.
    """
    rank = PRIORITY_RANK[validate_priority(priority)]
    head_start = STEPS_PER_CLASS * (len(PRIORITIES) - 1 - rank)
    index = max(0, min(len(MODES) - 1, pressure - head_start))
    return MODES[index]


# --------------------------------------------------------------------------
# Configuration
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class OverloadConfig:
    """Tuning knobs for the overload-control layer.

    Attaching an instance to ``ServiceConfig.overload`` /
    ``GatewayConfig.overload`` switches the layer on; ``None`` keeps the
    legacy binary behaviour bit-for-bit.
    """

    #: CoDel: sojourn time a queued request may accumulate before the
    #: queue is considered standing.
    codel_target_ms: float = 50.0
    #: CoDel: how long sojourn must stay above target before drops start.
    codel_interval_ms: float = 500.0
    #: Brownout ladder: tumbling window over which miss rate is measured.
    ladder_interval_ms: float = 250.0
    #: Escalate one ladder level when the windowed miss rate reaches this.
    escalate_miss_rate: float = 0.5
    #: A window is "clean" (counts toward recovery) below this miss rate.
    recover_miss_rate: float = 0.1
    #: Consecutive clean windows required to step down one level.
    recover_intervals: int = 2
    #: AIMD: hard floor/ceiling and starting value for per-replica inflight.
    min_inflight: int = 1
    max_inflight: int = 64
    initial_inflight: int = 8
    #: AIMD: multiplicative backoff factor on congestion.
    backoff_ratio: float = 0.7
    #: AIMD: at most one multiplicative cut per this many milliseconds.
    backoff_cooldown_ms: float = 100.0
    #: Retry budget: tokens deposited per observed success.
    retry_ratio: float = 0.1
    #: Retry budget: starting balance (lets a cold fleet hedge at all).
    retry_floor: float = 1.0
    #: Retry budget: balance ceiling.
    retry_cap: float = 10.0

    def __post_init__(self) -> None:
        if self.codel_target_ms <= 0 or self.codel_interval_ms <= 0:
            raise ValueError("CoDel target and interval must be positive")
        if self.ladder_interval_ms <= 0:
            raise ValueError("ladder interval must be positive")
        if not 0 < self.escalate_miss_rate <= 1:
            raise ValueError("escalate_miss_rate must be in (0, 1]")
        if not 0 <= self.recover_miss_rate < self.escalate_miss_rate:
            raise ValueError(
                "recover_miss_rate must be in [0, escalate_miss_rate)")
        if self.recover_intervals < 1:
            raise ValueError("recover_intervals must be >= 1")
        if not 1 <= self.min_inflight <= self.initial_inflight <= self.max_inflight:
            raise ValueError(
                "need 1 <= min_inflight <= initial_inflight <= max_inflight")
        if not 0 < self.backoff_ratio < 1:
            raise ValueError("backoff_ratio must be in (0, 1)")
        if not 0 < self.retry_ratio <= 1:
            raise ValueError("retry_ratio must be in (0, 1]")
        if self.retry_floor < 0 or self.retry_cap < self.retry_floor:
            raise ValueError("need 0 <= retry_floor <= retry_cap")


# --------------------------------------------------------------------------
# CoDel queue discipline
# --------------------------------------------------------------------------


class CoDelController:
    """Controlled-delay drop decisions over an injected clock.

    ``offer(sojourn_ms)`` is called with the head-of-queue sojourn at
    each dequeue opportunity and returns True when a request should be
    shed.  Drops begin only after sojourn has exceeded the target for a
    full interval, then recur on the ``interval / sqrt(count)`` cadence
    until sojourn falls back under the target.
    """

    def __init__(self, target_ms: float, interval_ms: float,
                 clock: Clock = time.monotonic) -> None:
        self.target_ms = float(target_ms)
        self._interval_s = float(interval_ms) / 1000.0
        self._clock = clock
        self._first_above: Optional[float] = None
        self._dropping = False
        self._drop_next = 0.0
        self._drop_count = 0
        self.drops = 0

    @property
    def dropping(self) -> bool:
        return self._dropping

    def offer(self, sojourn_ms: float) -> bool:
        """Return True if the request observed with this sojourn should drop."""
        now = self._clock()
        if sojourn_ms < self.target_ms:
            self._first_above = None
            self._dropping = False
            return False
        if self._first_above is None:
            self._first_above = now + self._interval_s
            return False
        if self._dropping:
            if now >= self._drop_next:
                self._drop_count += 1
                self._drop_next = now + self._interval_s / math.sqrt(self._drop_count)
                self.drops += 1
                return True
            return False
        if now >= self._first_above:
            self._dropping = True
            self._drop_count = 1
            self._drop_next = now + self._interval_s / math.sqrt(self._drop_count)
            self.drops += 1
            return True
        return False


# --------------------------------------------------------------------------
# AIMD concurrency limiter
# --------------------------------------------------------------------------


class AIMDLimiter:
    """Additive-increase / multiplicative-decrease in-flight limit."""

    def __init__(self, config: OverloadConfig, clock: Clock = time.monotonic) -> None:
        self._config = config
        self._clock = clock
        self._limit = float(config.initial_inflight)
        self._cooldown_s = config.backoff_cooldown_ms / 1000.0
        self._last_backoff = -math.inf
        self.backoffs = 0

    @property
    def limit(self) -> int:
        """Current integer in-flight cap."""
        return int(self._limit)

    def on_success(self) -> None:
        self._limit = min(float(self._config.max_inflight),
                          self._limit + 1.0 / max(self._limit, 1.0))

    def on_congestion(self) -> None:
        now = self._clock()
        if now - self._last_backoff < self._cooldown_s:
            return
        self._last_backoff = now
        self._limit = max(float(self._config.min_inflight),
                          self._limit * self._config.backoff_ratio)
        self.backoffs += 1


# --------------------------------------------------------------------------
# Retry budget
# --------------------------------------------------------------------------


class RetryBudget:
    """Token bucket capping retry volume at a fraction of successes.

    Hedged retries call ``try_spend()`` and are denied on an empty
    bucket.  Failover reroutes call ``try_spend(forced=True)``: the
    zero-loss guarantee means the reroute always proceeds, but the
    overdraw is recorded so the ledger still balances.
    """

    def __init__(self, ratio: float, floor: float = 1.0,
                 cap: float = 10.0) -> None:
        self.ratio = float(ratio)
        self.cap = float(cap)
        self.balance = float(floor)
        self.granted = 0
        self.denied = 0
        self.forced = 0

    def on_success(self) -> None:
        self.balance = min(self.cap, self.balance + self.ratio)

    def try_spend(self, forced: bool = False) -> bool:
        if self.balance >= 1.0:
            self.balance -= 1.0
            self.granted += 1
            return True
        if forced:
            self.balance = 0.0
            self.forced += 1
            return True
        self.denied += 1
        return False

    def snapshot(self) -> Dict[str, float]:
        return {"balance": round(self.balance, 4), "granted": self.granted,
                "denied": self.denied, "forced": self.forced}


# --------------------------------------------------------------------------
# Brownout ladder
# --------------------------------------------------------------------------


class BrownoutLadder:
    """Hysteresis controller mapping deadline-miss pressure to modes.

    Outcomes are observed into a tumbling window of ``ladder_interval_ms``;
    when the window closes, the miss rate either escalates pressure by
    one, counts toward a recovery streak, or resets the streak.  Recovery
    needs ``recover_intervals`` consecutive clean windows per step, so
    the ladder never flaps level-to-level on a single good window.
    """

    def __init__(self, config: OverloadConfig, clock: Clock = time.monotonic,
                 on_transition: Optional[Callable[[int, int, float], None]] = None,
                 ) -> None:
        self._config = config
        self._clock = clock
        self._on_transition = on_transition
        self._interval_s = config.ladder_interval_ms / 1000.0
        self._window_start = clock()
        self._observed = 0
        self._misses = 0
        self._clean_streak = 0
        self.pressure = 0
        self.max_pressure = 0
        self.transitions = 0

    def mode(self, priority: str) -> str:
        return mode_for(self.pressure, priority)

    def observe(self, miss: bool) -> None:
        """Record one request outcome and roll the window if it closed."""
        self._observed += 1
        if miss:
            self._misses += 1
        self._evaluate()

    def tick(self) -> None:
        """Advance window bookkeeping without an outcome (idle recovery)."""
        self._evaluate()

    def _evaluate(self) -> None:
        now = self._clock()
        if now - self._window_start < self._interval_s:
            return
        miss_rate = self._misses / self._observed if self._observed else 0.0
        self._window_start = now
        self._observed = 0
        self._misses = 0
        if miss_rate >= self._config.escalate_miss_rate:
            self._clean_streak = 0
            self._set_pressure(self.pressure + 1, miss_rate)
        elif miss_rate <= self._config.recover_miss_rate:
            self._clean_streak += 1
            if self._clean_streak >= self._config.recover_intervals:
                self._clean_streak = 0
                self._set_pressure(self.pressure - 1, miss_rate)
        else:
            self._clean_streak = 0

    def _set_pressure(self, pressure: int, miss_rate: float) -> None:
        pressure = max(0, min(MAX_PRESSURE, pressure))
        if pressure == self.pressure:
            return
        old = self.pressure
        self.pressure = pressure
        self.max_pressure = max(self.max_pressure, pressure)
        self.transitions += 1
        if self._on_transition is not None:
            try:
                self._on_transition(old, pressure, miss_rate)
            except Exception:  # pragma: no cover - observers must not break control
                pass

    def snapshot(self) -> Dict[str, object]:
        return {
            "level": self.pressure,
            "max_level": self.max_pressure,
            "transitions": self.transitions,
            "modes": {name: self.mode(name) for name in PRIORITIES},
        }


def deadline_missed(result: object) -> bool:
    """True when a service result indicates its deadline was blown.

    Used as the congestion signal feeding the AIMD limiter and the
    brownout ladder: overruns, deadline-degraded answers, and requests
    that expired before decode all count; plain sheds and brownout
    degradations do not (they are the *response* to congestion).
    """
    status = getattr(result, "status", "")
    if status == "expired":
        return True
    note = getattr(result, "note", "") or ""
    return "deadline" in note or "overran" in note
