"""Circuit breaker guarding the expensive decode path.

Classic three-state breaker (closed → open → half-open) over the same
injectable monotonic clock as :mod:`repro.serving.deadline`:

* **closed** — Viterbi is attempted normally; consecutive failures
  (decode exceptions, deadline overruns) are counted.
* **open** — after ``failure_threshold`` consecutive failures the
  breaker trips: callers skip Viterbi entirely and go straight to the
  greedy fallback until ``cooldown_s`` has elapsed.  A struggling
  decoder gets no further traffic to drown in.
* **half-open** — after the cool-down *exactly one* trial request is
  let through (:meth:`CircuitBreaker.allow` hands out the probe under a
  lock; concurrent callers are shed, not queued); success re-closes the
  breaker, failure re-opens it (and restarts the cool-down).

State transitions fire the optional ``on_transition`` observer.
Observer calls are exception-safe: a raising observer is reported via
``warnings.warn`` and never wedges the state machine — telemetry must
not be able to take the breaker down with it.

Tests drive the breaker with a
:class:`~repro.serving.deadline.ManualClock` for exact state assertions.
"""

from __future__ import annotations

import threading
import time
import warnings

from repro.serving.deadline import Clock

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"

#: Numeric encoding of breaker states for gauges/dashboards
#: (0 = healthy … 2 = tripped); used by the gateway's per-replica
#: ``gateway.replica.<i>.breaker_state`` gauge.
BREAKER_STATE_CODES = {CLOSED: 0, HALF_OPEN: 1, OPEN: 2}


class CircuitBreaker:
    """Trip after consecutive failures; recover through a half-open trial."""

    def __init__(self, failure_threshold: int = 3, cooldown_s: float = 1.0,
                 clock: Clock = time.monotonic, on_transition=None):
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if cooldown_s < 0:
            raise ValueError(f"cooldown_s must be >= 0, got {cooldown_s}")
        self.failure_threshold = failure_threshold
        self.cooldown_s = cooldown_s
        self._clock = clock
        self._state = CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        #: Lifetime count of closed→open transitions (for service stats).
        self.trips = 0
        #: Optional ``on_transition(old_state, new_state, breaker)``
        #: observer, fired on every state *change* (telemetry hook).
        self.on_transition = on_transition
        #: Half-open probe accounting: exactly one caller may hold the
        #: probe at a time; ``record_success``/``record_failure``
        #: release it.
        self._probe_lock = threading.Lock()
        self._probe_inflight = False

    def _set_state(self, new: str) -> None:
        old = self._state
        if new == old:
            return
        self._state = new
        if new == HALF_OPEN:
            self._probe_inflight = False  # fresh probe each half-open
        if self.on_transition is not None:
            try:
                self.on_transition(old, new, self)
            except Exception as exc:
                # Telemetry observers must never wedge the breaker.
                warnings.warn(
                    f"CircuitBreaker on_transition observer raised "
                    f"{type(exc).__name__}: {exc}",
                    RuntimeWarning,
                    stacklevel=2,
                )

    # ------------------------------------------------------------------
    @property
    def state(self) -> str:
        """Current state, promoting open → half-open once cooled down."""
        if self._state == OPEN and (
            self._clock() - self._opened_at >= self.cooldown_s
        ):
            self._set_state(HALF_OPEN)
        return self._state

    def allow(self) -> bool:
        """May the protected operation be attempted right now?

        Closed: always.  Open: never.  Half-open: exactly one caller
        wins the probe; until its ``record_success`` /
        ``record_failure`` lands, every other caller is shed (``False``)
        rather than queued behind a decoder of unknown health.
        """
        state = self.state
        if state == OPEN:
            return False
        if state == HALF_OPEN:
            with self._probe_lock:
                if self._probe_inflight:
                    return False
                self._probe_inflight = True
        return True

    # ------------------------------------------------------------------
    def record_success(self) -> None:
        """The protected operation completed within budget."""
        self._consecutive_failures = 0
        self._probe_inflight = False
        self._set_state(CLOSED)

    def record_failure(self) -> None:
        """The protected operation raised or blew its deadline."""
        state = self.state  # promote open → half-open first
        self._probe_inflight = False
        self._consecutive_failures += 1
        if state == HALF_OPEN or (
            self._consecutive_failures >= self.failure_threshold
        ):
            if state != OPEN:
                self.trips += 1
            self._set_state(OPEN)
            self._opened_at = self._clock()
            self._consecutive_failures = 0

    def __repr__(self) -> str:
        return (
            f"CircuitBreaker(state={self.state!r}, "
            f"failures={self._consecutive_failures}/{self.failure_threshold})"
        )
