"""The sharded serving gateway: a supervised fleet of tagging replicas.

:class:`ShardedGateway` routes tag requests across N replicas, each
hosting its own :class:`~repro.serving.TaggingService` (in a forked
worker process, or in-process on a virtual clock for deterministic
tests — see :mod:`repro.serving.replica`).  The robustness ladder, in
request order:

1. **Admission** — the request is consistent-hash routed
   (:mod:`repro.serving.routing`) to its owning shard; when that
   shard's circuit breaker is open, or the shard is draining or dead,
   the *least-loaded* healthy shard takes it instead.  Each shard's
   queue is bounded: past ``max_shard_queue`` outstanding requests the
   gateway sheds at admission with :class:`~repro.serving.Overloaded`
   (backpressure, never unbounded queueing).
2. **Supervision** — every dispatched ticket is tracked until its
   response arrives.  A replica that dies (SIGKILL, crash) or wedges
   past ``replica_timeout_s`` is detected on the next pump: its
   in-flight tickets are *refunded* (requeued to surviving replicas at
   the front of the line), its breaker records the failure, and the
   replica is rebuilt on fresh queues after a jittered backoff — the
   same crash/hang-detection, pool-rebuild and attempt-refund
   discipline as :class:`repro.perf.executor.EpisodeExecutor`, applied
   to a long-lived fleet.
3. **Hedging** — a request in flight longer than ``hedge_after_ms`` is
   duplicated to the least-loaded other healthy replica.  The first
   response wins and is delivered exactly once; the loser is cancelled
   (its eventual response, if any, is discarded, never double-
   delivered).  Replicas are deterministic clones, so either answer is
   bit-identical to the other.
4. **Rolling reload** — :meth:`start_rolling_reload` swaps the service
   factory (e.g. to a newer
   :class:`~repro.reliability.checkpoint.CheckpointStore` checkpoint)
   one replica at a time: drain → swap → readmit, with at most one
   replica draining at any moment and zero failed requests — traffic
   for the draining shard simply routes around it.

Every run is accounted in a :class:`GatewayReport` (the serving
analogue of :class:`~repro.perf.executor.ExecutionReport`): admissions,
sheds, hedges won/cancelled, deaths, wedges, rebuilds, refunds and
breaker transitions, so the ``gateway-replica-kill`` chaos scenario can
assert that *every* kill is visible in the ledger.
"""

from __future__ import annotations

import collections
import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

import numpy as np

from repro import obs
from repro.obs import reqtrace
from repro.obs.metrics import MetricsRegistry, histogram_quantile
from repro.serving.breaker import BREAKER_STATE_CODES, OPEN, CircuitBreaker
from repro.serving.replica import (
    _UNSET_SENTINEL,
    InProcessReplica,
    ProcessReplica,
    fork_available,
)
from repro.serving.overload import (
    PRIORITIES,
    PRIORITY_RANK,
    STANDARD,
    AIMDLimiter,
    CoDelController,
    OverloadConfig,
    RetryBudget,
    deadline_missed,
    validate_priority,
)
from repro.serving.routing import HashRing, request_key
from repro.serving.service import Overloaded

_UNSET = object()

#: Shard lifecycle states.
READY = "ready"
DRAINING = "draining"
REBUILDING = "rebuilding"


class GatewayStalled(RuntimeError):
    """``drain`` gave up: tickets still pending past its wall timeout."""


# ----------------------------------------------------------------------
# Configuration
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class GatewayConfig:
    """Operating limits of a :class:`ShardedGateway`."""

    #: Replica count; shards map 1:1 onto replicas.
    replicas: int = 3
    #: Virtual nodes per shard on the consistent-hash ring.
    virtual_nodes: int = 16
    #: Outstanding (queued + in-flight) requests a shard may hold;
    #: admission past this sheds with backpressure.
    max_shard_queue: int = 64
    #: In-flight longer than this hedges to a second replica
    #: (``None`` = hedging off).
    hedge_after_ms: float | None = None
    #: In-flight longer than this declares the replica wedged: it is
    #: killed, rebuilt, and its work refunded (``None`` = off).
    replica_timeout_s: float | None = None
    #: Consecutive replica-level failures (death, wedge) tripping the
    #: per-replica breaker.
    breaker_threshold: int = 1
    #: Cool-down before a tripped replica breaker half-opens.
    breaker_cooldown_ms: float = 250.0
    #: Base for the jittered exponential rebuild backoff (0 = rebuild
    #: immediately); jitter is seeded from ``(seed, rebuilds, replica)``
    #: so a mass rebuild never retries in lockstep.
    rebuild_backoff_s: float = 0.0
    #: Seed for the deterministic rebuild jitter.
    seed: int = 0
    #: Sleep between supervision passes in :meth:`ShardedGateway.drain`.
    poll_interval_s: float = 0.002
    #: Overload-control knobs (AIMD limiter, CoDel staleness shedding,
    #: retry budget, priority eviction); ``None`` = legacy behaviour.
    overload: OverloadConfig | None = None

    def __post_init__(self):
        if self.replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {self.replicas}")
        if self.max_shard_queue < 1:
            raise ValueError(
                f"max_shard_queue must be >= 1, got {self.max_shard_queue}"
            )
        if self.hedge_after_ms is not None and self.hedge_after_ms < 0:
            raise ValueError(
                f"hedge_after_ms must be >= 0, got {self.hedge_after_ms}"
            )
        if self.replica_timeout_s is not None and self.replica_timeout_s <= 0:
            raise ValueError(
                f"replica_timeout_s must be positive, "
                f"got {self.replica_timeout_s}"
            )
        if self.rebuild_backoff_s < 0:
            raise ValueError(
                f"rebuild_backoff_s must be >= 0, got {self.rebuild_backoff_s}"
            )


# ----------------------------------------------------------------------
# Results and accounting
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RoutedResult:
    """One delivered answer, with its routing history."""

    ticket: int
    result: object  #: TagResult | Rejected | Overloaded
    #: Replica that produced the winning response (None for a
    #: gateway-side shed).
    replica: int | None
    #: Milliseconds between admission and delivery.
    latency_ms: float
    #: True when a hedge was launched for this request.
    hedged: bool = False
    #: Times the request was requeued off a dead/wedged replica.
    requeues: int = 0
    #: Priority class the request was admitted with.
    priority: str = STANDARD
    #: Request-trace id minted at admission (``None`` when tracing off).
    trace: str | None = None


@dataclass
class GatewayReport:
    """What the fleet actually did — the serving ExecutionReport."""

    backend: str
    replicas: int
    admitted: int = 0
    completed: int = 0
    shed: int = 0
    #: Already-admitted tickets shed out of a shard queue (CoDel
    #: staleness, priority eviction); these still count as completed —
    #: the caller gets an Overloaded answer, never silence.
    shed_queued: int = 0
    #: Hedge launches refused by the retry budget.
    hedges_denied: int = 0
    #: Queued tickets evicted to make room for higher-priority arrivals.
    evictions: int = 0
    #: Gateway-side sheds broken down by priority class (overload only).
    shed_by_priority: dict = field(default_factory=dict)
    #: Overload-control state at shutdown (retry budget, limiter caps,
    #: per-replica brownout ladders when visible).
    overload: dict = field(default_factory=dict)
    #: In-flight tickets requeued off dead/wedged replicas, uncharged.
    refunds: int = 0
    #: Queued (not yet dispatched) tickets rerouted off a draining or
    #: dead shard.
    rerouted: int = 0
    hedges: int = 0
    #: Hedge responses that arrived first and were delivered.
    hedges_won: int = 0
    #: Hedge legs cancelled because the other leg answered first.
    hedges_cancelled: int = 0
    #: Responses discarded because their ticket was already answered.
    late_responses: int = 0
    #: Replica deaths detected (SIGKILL, crash).
    deaths: int = 0
    #: Replicas killed by the gateway for exceeding replica_timeout_s.
    wedges: int = 0
    rebuilds: int = 0
    #: Replicas restarted by rolling reload.
    reloads: int = 0
    breaker_transitions: int = 0
    #: Highest number of simultaneously draining replicas ever seen
    #: (rolling reload must keep this at 1).
    max_concurrent_draining: int = 0
    #: Persistent content-store traffic seen by this process (empty
    #: when no ``--store-dir`` session is active; forked replicas
    #: count store hits in their own telemetry streams).
    store: dict = field(default_factory=dict)
    #: Per-priority queue-wait quantiles (admission → first dispatch),
    #: filled at shutdown: ``{priority: {count, p50_ms, p95_ms, p99_ms}}``.
    queue_wait: dict = field(default_factory=dict)
    per_replica: list[dict] = field(default_factory=list)

    @property
    def pending(self) -> int:
        return self.admitted - self.completed

    @property
    def clean(self) -> bool:
        """True when nothing needed healing."""
        return (self.deaths == 0 and self.wedges == 0 and self.hedges == 0
                and self.refunds == 0 and self.pending == 0)

    def summary(self) -> dict:
        """JSON-serialisable digest for journals, CLIs and chaos."""
        return {
            "backend": self.backend,
            "replicas": self.replicas,
            "admitted": self.admitted,
            "completed": self.completed,
            "shed": self.shed,
            "shed_queued": self.shed_queued,
            "hedges_denied": self.hedges_denied,
            "evictions": self.evictions,
            "shed_by_priority": dict(self.shed_by_priority),
            "overload": dict(self.overload),
            "refunds": self.refunds,
            "rerouted": self.rerouted,
            "hedges": self.hedges,
            "hedges_won": self.hedges_won,
            "hedges_cancelled": self.hedges_cancelled,
            "late_responses": self.late_responses,
            "deaths": self.deaths,
            "wedges": self.wedges,
            "rebuilds": self.rebuilds,
            "reloads": self.reloads,
            "breaker_transitions": self.breaker_transitions,
            "max_concurrent_draining": self.max_concurrent_draining,
            "queue_wait": dict(self.queue_wait),
            "per_replica": list(self.per_replica),
        }

    def render(self) -> str:
        line = (f"gateway: backend={self.backend} replicas={self.replicas} "
                f"admitted={self.admitted} completed={self.completed} "
                f"shed={self.shed} hedges={self.hedges} "
                f"deaths={self.deaths} wedges={self.wedges} "
                f"rebuilds={self.rebuilds} refunds={self.refunds} "
                f"reloads={self.reloads} "
                f"breaker_transitions={self.breaker_transitions}")
        if self.overload:
            line += (f"\noverload: shed_queued={self.shed_queued} "
                     f"evictions={self.evictions} "
                     f"hedges_denied={self.hedges_denied} "
                     f"shed_by_priority={dict(self.shed_by_priority)}")
        if self.queue_wait:
            parts = []
            for name in ("interactive", "standard", "batch"):
                qw = self.queue_wait.get(name)
                if qw:
                    parts.append(
                        f"{name} p50={qw['p50_ms']:g}/p95={qw['p95_ms']:g}"
                        f"/p99={qw['p99_ms']:g} (n={qw['count']})"
                    )
            if parts:
                line += "\nqueue wait ms: " + ", ".join(parts)
        return line


# ----------------------------------------------------------------------
# Internal request / shard state
# ----------------------------------------------------------------------
@dataclass
class _Request:
    ticket: int
    tokens: tuple[str, ...]
    deadline_ms: object
    submitted_at: float
    #: Shard preference order fixed at admission (consistent hash).
    preference: tuple[int, ...]
    #: Shards the ticket currently sits queued or in-flight on.
    inflight_on: set[int] = field(default_factory=set)
    first_sent_at: float | None = None
    hedged: bool = False
    #: Shard the hedge leg was sent to (None until a hedge launches).
    hedge_shard: int | None = None
    requeues: int = 0
    priority: str = STANDARD
    #: Trace id minted at admission (``None`` when tracing is off).
    trace: str | None = None


class _Shard:
    def __init__(self, shard_id: int, handle, breaker: CircuitBreaker):
        self.id = shard_id
        self.handle = handle
        self.breaker = breaker
        self.state = READY
        self.queue: collections.deque[int] = collections.deque()
        self.inflight: dict[int, float] = {}
        #: Overload control (set by the gateway when enabled).
        self.limiter: AIMDLimiter | None = None
        self.codel: CoDelController | None = None
        self.served = 0
        self.deaths = 0
        self.rebuilds = 0
        self.rebuild_at: float | None = None

    @property
    def load(self) -> int:
        return len(self.queue) + len(self.inflight)

    def status(self) -> dict:
        return {
            "replica": self.id,
            "state": self.state,
            "alive": bool(self.handle.alive()),
            "generation": self.handle.generation,
            "breaker": self.breaker.state,
            "queued": len(self.queue),
            "inflight": len(self.inflight),
            "served": self.served,
            "deaths": self.deaths,
            "rebuilds": self.rebuilds,
        }


# ----------------------------------------------------------------------
# The gateway
# ----------------------------------------------------------------------
class ShardedGateway:
    """Route tagging requests across a supervised replica fleet.

    ``service_factory(replica_id)`` builds one replica's
    :class:`~repro.serving.TaggingService`; replicas must be
    deterministic clones (same model, same config), which is what makes
    failover and hedging transparent — any replica's answer is
    bit-identical to any other's.

    ``backend`` is ``"process"`` (forked workers), ``"in-process"``
    (virtual-clock replicas, deterministic tests) or ``"auto"``
    (process when fork is available, else in-process).
    ``service_time_s(tokens, ticket) -> float`` is the in-process
    latency model (ignored by the process backend).
    """

    def __init__(self, service_factory: Callable[[int], object],
                 config: GatewayConfig | None = None,
                 backend: str = "auto",
                 clock: Callable[[], float] = time.monotonic,
                 telemetry_path: str | None = None,
                 service_time_s=None):
        if backend not in ("auto", "process", "in-process"):
            raise ValueError(
                f"backend must be 'auto', 'process' or 'in-process', "
                f"got {backend!r}"
            )
        self.config = config or GatewayConfig()
        self.clock = clock
        self._factory = service_factory
        if backend == "auto":
            backend = "process" if fork_available() else "in-process"
        if backend == "process" and not fork_available():
            raise RuntimeError("process backend requires fork support")
        self.backend = backend
        self.ring = HashRing(range(self.config.replicas),
                             virtual_nodes=self.config.virtual_nodes)
        self.report = GatewayReport(backend=backend,
                                    replicas=self.config.replicas)
        self.metrics = MetricsRegistry()
        self._next_ticket = 0
        self._requests: dict[int, _Request] = {}
        self._done: dict[int, RoutedResult] = {}
        #: Admitted tickets with nowhere routable to go right now; they
        #: are re-routed every pump until a replica comes back.
        self._limbo: collections.deque[int] = collections.deque()
        self._reload_pending: list[int] = []
        self._shards: list[_Shard] = []
        for i in range(self.config.replicas):
            if backend == "process":
                handle = ProcessReplica(i, service_factory,
                                        telemetry_path=telemetry_path)
            else:
                handle = InProcessReplica(i, service_factory, clock=clock,
                                          service_time_s=service_time_s)
            breaker = CircuitBreaker(
                failure_threshold=self.config.breaker_threshold,
                cooldown_s=self.config.breaker_cooldown_ms / 1000.0,
                clock=clock,
                on_transition=self._make_breaker_observer(i),
            )
            self._shards.append(_Shard(i, handle, breaker))
        self._overload = self.config.overload
        if self._overload is not None:
            self._retry_budget = RetryBudget(
                self._overload.retry_ratio, floor=self._overload.retry_floor,
                cap=self._overload.retry_cap,
            )
            self.report.shed_by_priority = {name: 0 for name in PRIORITIES}
            for shard in self._shards:
                shard.limiter = AIMDLimiter(self._overload, clock=clock)
                shard.codel = CoDelController(
                    self._overload.codel_target_ms,
                    self._overload.codel_interval_ms, clock=clock,
                )
        else:
            self._retry_budget = None
        self._closed = False
        for shard in self._shards:
            shard.handle.start()
        self._publish_gauges()

    # ------------------------------------------------------------------
    def __enter__(self) -> "ShardedGateway":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.shutdown()
        return False

    def shutdown(self) -> None:
        if self._closed:
            return
        self._closed = True
        self.report.store = self._store_snapshot()
        self.report.overload = self._overload_snapshot()
        self.report.queue_wait = self._queue_wait_stats()
        for shard in self._shards:
            shard.handle.stop()

    def _queue_wait_stats(self) -> dict:
        """Per-priority queue-wait quantiles (admission → first dispatch)."""
        out: dict[str, dict] = {}
        for name in PRIORITIES:
            hist = self.metrics.existing_histogram(
                f"gateway.queue_wait_ms.{name}"
            )
            if hist is None or not hist.count:
                continue
            out[name] = {
                "count": hist.count,
                "p50_ms": histogram_quantile(hist, 0.50),
                "p95_ms": histogram_quantile(hist, 0.95),
                "p99_ms": histogram_quantile(hist, 0.99),
            }
        return out

    def _observe_queue_wait(self, priority: str, wait_ms: float,
                            trace_id: str | None = None) -> None:
        name = f"gateway.queue_wait_ms.{priority}"
        self.metrics.histogram(name).observe(wait_ms, trace_id)
        obs.observe(name, wait_ms, trace_id=trace_id)

    def _overload_snapshot(self) -> dict:
        """Overload-control state: budget, limiter caps, replica ladders."""
        if self._overload is None:
            return {}
        snap = {
            "retry_budget": self._retry_budget.snapshot(),
            "inflight_limits": {
                shard.id: shard.limiter.limit for shard in self._shards
            },
            "codel_drops": sum(shard.codel.drops for shard in self._shards),
            "shed_by_priority": dict(self.report.shed_by_priority),
        }
        ladders = []
        for shard in self._shards:
            service = getattr(shard.handle, "service", None)
            ladder = getattr(service, "overload_snapshot", lambda: None)()
            if ladder is not None:
                ladders.append({"replica": shard.id, **ladder})
        if ladders:
            snap["ladders"] = ladders
        return snap

    @staticmethod
    def _store_snapshot() -> dict:
        from repro import store as pstore

        active = pstore.active()
        return active.snapshot() if active is not None else {}

    # ------------------------------------------------------------------
    # Telemetry
    # ------------------------------------------------------------------
    def _make_breaker_observer(self, shard_id: int):
        def observer(old: str, new: str, _breaker) -> None:
            self.report.breaker_transitions += 1
            self.metrics.counter("gateway.breaker_transitions").inc()
            self.metrics.gauge(
                f"gateway.replica.{shard_id}.breaker_state"
            ).set(BREAKER_STATE_CODES[new])
            obs.count("gateway.breaker_transitions")
            obs.set_gauge(f"gateway.replica.{shard_id}.breaker_state",
                          BREAKER_STATE_CODES[new])
            obs.emit("gateway.breaker", replica=shard_id, old=old, new=new)
            reqtrace.record("gateway.breaker", replica=shard_id,
                            old=old, new=new)
            if new == OPEN:
                reqtrace.incident("breaker_open", replica=shard_id)
        return observer

    def _count(self, name: str, n: int = 1) -> None:
        self.metrics.counter(f"gateway.{name}").inc(n)
        obs.count(f"gateway.{name}", n)

    def _publish_gauges(self) -> None:
        for shard in self._shards:
            self.metrics.gauge(
                f"gateway.replica.{shard.id}.breaker_state"
            ).set(BREAKER_STATE_CODES[shard.breaker.state])
            obs.set_gauge(f"gateway.replica.{shard.id}.breaker_state",
                          BREAKER_STATE_CODES[shard.breaker.state])
            self.metrics.gauge(
                f"gateway.replica.{shard.id}.queue_depth"
            ).set(shard.load)
            if shard.limiter is not None:
                self.metrics.gauge(
                    f"gateway.replica.{shard.id}.inflight_limit"
                ).set(shard.limiter.limit)
                obs.set_gauge(f"gateway.replica.{shard.id}.inflight_limit",
                              shard.limiter.limit)
        if self._retry_budget is not None:
            balance = round(self._retry_budget.balance, 4)
            self.metrics.gauge("retry_budget.balance").set(balance)
            obs.set_gauge("retry_budget.balance", balance)
        self.report.per_replica = [s.status() for s in self._shards]

    # ------------------------------------------------------------------
    # Admission and routing
    # ------------------------------------------------------------------
    def submit(self, tokens: Sequence[str], deadline_ms=_UNSET,
               priority: str = STANDARD) -> int:
        """Admit (or shed) one request; returns its ticket.

        With overload control enabled, a full fleet first tries to evict
        a strictly-lower-priority queued ticket before shedding the
        arrival — interactive work is never turned away while batch work
        is still waiting.
        """
        ticket = self._next_ticket
        self._next_ticket += 1
        request = _Request(
            ticket=ticket,
            tokens=tuple(str(t) for t in tokens),
            deadline_ms=(_UNSET_SENTINEL if deadline_ms is _UNSET
                         else deadline_ms),
            submitted_at=self.clock(),
            preference=self.ring.preference(request_key(tokens)),
            priority=validate_priority(priority),
            trace=(reqtrace.mint(self.config.seed, ticket)
                   if reqtrace.tracing_enabled() else None),
        )
        shard = self._choose_shard(request)
        if shard is None and self._overload is not None:
            shard = self._evict_for(request)
        if shard is None:
            self._shed_ticket(
                ticket, request,
                "no replica can take the request "
                "(queues full or fleet unhealthy)", queued=False,
            )
            return ticket
        self.report.admitted += 1
        self._count("admitted")
        self._requests[ticket] = request
        shard.queue.append(ticket)
        request.inflight_on.add(shard.id)
        if request.trace is not None:
            reqtrace.hop(request.trace, "admit", ticket=ticket,
                         where="gateway", priority=request.priority)
            reqtrace.hop(request.trace, "route", ticket=ticket,
                         where="gateway", replica=shard.id, attempt=0)
        return ticket

    def _shed_ticket(self, ticket: int, request: _Request | None,
                     reason: str, *, queued: bool) -> None:
        """Deliver a gateway-side shed with full stats parity.

        Sheds never reach a replica, so the gateway itself records the
        ``serving.shed`` counter and the ``serving.queue_wait_ms``
        observation — identically for both replica backends — keeping
        fleet-merged ``repro obs report`` counts honest (drops would
        otherwise be invisible with forked replicas).  Queued sheds of
        already-admitted tickets also count as completed: the caller
        gets an answer, never silence.
        """
        wait_ms = 0.0
        priority = STANDARD
        trace = None
        if request is not None:
            wait_ms = max(0.0, (self.clock() - request.submitted_at) * 1000.0)
            priority = request.priority
            trace = request.trace
        self.report.shed += 1
        self._count("shed")
        self.metrics.counter("serving.shed").inc()
        obs.count("serving.shed")
        self.metrics.histogram("serving.queue_wait_ms").observe(wait_ms, trace)
        obs.observe("serving.queue_wait_ms", wait_ms, trace_id=trace)
        self._observe_queue_wait(priority, wait_ms, trace)
        if self._overload is not None:
            self.report.shed_by_priority[priority] += 1
            self.metrics.counter(f"overload.shed.{priority}").inc()
            obs.count(f"overload.shed.{priority}")
        if queued:
            self.report.shed_queued += 1
            self.report.completed += 1
            self._count("completed")
        if trace is not None:
            reqtrace.hop(trace, "shed", ticket=ticket, where="gateway",
                         priority=priority, wait_ms=round(wait_ms, 3),
                         queued=queued)
        self._done[ticket] = RoutedResult(
            ticket, Overloaded(reason, queue_wait_ms=wait_ms),
            replica=None, latency_ms=wait_ms, priority=priority,
            trace=trace,
        )

    def _evict_for(self, request: _Request) -> _Shard | None:
        """Free a queue slot for ``request`` by evicting lower priority.

        Scans routable shards for the freshest queued ticket of the
        lowest priority class present; evicts it only when it ranks
        strictly below the arrival.  Returns the shard with the freed
        slot (the arrival is admitted there), or ``None``.
        """
        worst: tuple[int, int, _Shard] | None = None
        for shard in self._shards:
            if not self._routable(shard):
                continue
            for ticket in shard.queue:
                queued = self._requests.get(ticket)
                if queued is None or ticket in self._done:
                    continue
                rank = PRIORITY_RANK[queued.priority]
                if worst is None or (rank, ticket) > worst[:2]:
                    worst = (rank, ticket, shard)
        if worst is None or worst[0] <= PRIORITY_RANK[request.priority]:
            return None
        _rank, victim, shard = worst
        shard.queue.remove(victim)
        victim_request = self._requests.get(victim)
        if victim_request is not None:
            victim_request.inflight_on.discard(shard.id)
            if victim_request.trace is not None:
                reqtrace.hop(victim_request.trace, "evict", ticket=victim,
                             where="gateway", by=request.priority)
        self.report.evictions += 1
        self._count("evictions")
        self._shed_ticket(
            victim, victim_request,
            f"evicted by a {request.priority} arrival while queued",
            queued=True,
        )
        return shard

    def _routable(self, shard: _Shard, exclude: Iterable[int] = ()) -> bool:
        return (shard.state == READY and shard.handle.alive()
                and shard.id not in set(exclude))

    def _choose_shard(self, request: _Request,
                      exclude: Iterable[int] = (),
                      bounded: bool = True) -> _Shard | None:
        """Pick the shard for a (re)dispatch.

        Consistent-hash owner first; when it is unroutable, breaker-open
        or full, fall back to the *least-loaded* other candidate
        (ties broken by ring preference order, so fallback is as
        deterministic as primary routing).  ``bounded=False`` skips the
        queue bound — used for requeues of already-admitted tickets,
        whose zero-loss promise outranks backpressure.
        """
        exclude = set(exclude)
        candidates = [self._shards[i] for i in request.preference
                      if self._routable(self._shards[i], exclude)]
        if not candidates:
            return None
        ordered = [candidates[0]] + sorted(
            candidates[1:],
            key=lambda s: (s.load, request.preference.index(s.id)),
        )
        for shard in ordered:
            if bounded and shard.load >= self.config.max_shard_queue:
                continue
            if shard.breaker.state == OPEN:
                continue
            if not shard.breaker.allow():
                continue  # half-open probe already taken by another
            return shard
        return None

    def _requeue(self, ticket: int, *, refund: bool) -> None:
        """Put an admitted ticket back in line after its replica died."""
        request = self._requests.get(ticket)
        if request is None or ticket in self._done:
            return
        if refund:
            self.report.refunds += 1
            self._count("refunds")
        else:
            self.report.rerouted += 1
        if self._retry_budget is not None:
            # Failover reroutes overdraw the budget rather than being
            # denied: the zero-loss promise to admitted tickets wins,
            # but the spend is recorded so the ledger still balances.
            self._retry_budget.try_spend(forced=True)
        request.requeues += 1
        request.first_sent_at = None
        shard = self._choose_shard(request, exclude=request.inflight_on,
                                   bounded=False)
        if shard is None:
            self._limbo.append(ticket)
            return
        shard.queue.appendleft(ticket)  # innocents go to the front
        request.inflight_on.add(shard.id)
        if request.trace is not None:
            reqtrace.hop(request.trace, "route", ticket=ticket,
                         where="gateway", replica=shard.id,
                         attempt=request.requeues)

    # ------------------------------------------------------------------
    # Supervision pump
    # ------------------------------------------------------------------
    def pump(self) -> int:
        """One supervision pass; returns the number of new deliveries.

        Order matters: deaths are swept before dispatch (never feed a
        corpse), rebuilds come back before hedging (a revived replica is
        a hedge target), and collection runs last so a request
        dispatched this pass can complete this pass on the in-process
        backend.
        """
        if self._closed:
            raise RuntimeError("gateway is shut down")
        now = self.clock()
        self._sweep_deaths(now)
        self._sweep_rebuilds(now)
        self._advance_reload(now)
        self._sweep_wedges(now)
        self._launch_hedges(now)
        self._retry_limbo()
        self._dispatch(now)
        delivered = self._collect()
        self._publish_gauges()
        return delivered

    # -- death / rebuild ------------------------------------------------
    def _fail_replica(self, shard: _Shard, now: float, *, kind: str) -> None:
        if kind == "death":
            shard.deaths += 1
            self.report.deaths += 1
            self._count("deaths")
        else:
            self.report.wedges += 1
            self._count("wedges")
        obs.emit("gateway.replica_down", replica=shard.id, kind=kind,
                 inflight=len(shard.inflight), queued=len(shard.queue))
        reqtrace.record("gateway.replica_down", replica=shard.id,
                        failure=kind, inflight=len(shard.inflight),
                        queued=len(shard.queue))
        reqtrace.incident("replica_down", replica=shard.id, failure=kind)
        shard.breaker.record_failure()
        # Refund in-flight work (the replica died, not the request) and
        # reroute anything still queued.
        inflight = list(shard.inflight)
        queued = list(shard.queue)
        shard.inflight.clear()
        shard.queue.clear()
        for ticket in inflight + queued:
            request = self._requests.get(ticket)
            if request is not None:
                request.inflight_on.discard(shard.id)
        for ticket in inflight:
            self._requeue(ticket, refund=True)
        for ticket in queued:
            self._requeue(ticket, refund=False)
        shard.state = REBUILDING
        shard.rebuild_at = now + self._rebuild_backoff(shard)
        shard.rebuilds += 1

    def _rebuild_backoff(self, shard: _Shard) -> float:
        """Jittered exponential backoff, seeded per (seed, attempt,
        replica) — rebuilds after a correlated failure fan out instead
        of thundering back in lockstep."""
        base = self.config.rebuild_backoff_s
        if base <= 0:
            return 0.0
        jitter = np.random.default_rng(
            (self.config.seed, 6271, shard.rebuilds, shard.id)
        ).random()
        return base * (2.0 ** min(shard.rebuilds, 8)) * (0.5 + jitter)

    def _sweep_deaths(self, now: float) -> None:
        for shard in self._shards:
            if shard.state in (READY, DRAINING) and not shard.handle.alive():
                self._fail_replica(shard, now, kind="death")

    def _sweep_rebuilds(self, now: float) -> None:
        for shard in self._shards:
            if shard.state == REBUILDING and now >= (shard.rebuild_at or 0.0):
                shard.handle.restart()
                shard.rebuild_at = None
                shard.state = READY
                self.report.rebuilds += 1
                self._count("rebuilds")
                obs.emit("gateway.replica_rebuilt", replica=shard.id,
                         generation=shard.handle.generation)
                reqtrace.record("gateway.replica_rebuilt", replica=shard.id,
                                generation=shard.handle.generation)
                reqtrace.incident("replica_rebuilt", replica=shard.id,
                                  generation=shard.handle.generation)

    def _sweep_wedges(self, now: float) -> None:
        if self.config.replica_timeout_s is None:
            return
        for shard in self._shards:
            if shard.state not in (READY, DRAINING) or not shard.inflight:
                continue
            oldest = min(shard.inflight.values())
            if now - oldest > self.config.replica_timeout_s:
                shard.handle.kill()
                self._fail_replica(shard, now, kind="wedge")

    # -- rolling reload -------------------------------------------------
    def start_rolling_reload(self, service_factory=None) -> None:
        """Begin a drain → swap → readmit pass over the whole fleet.

        One replica drains at a time; its hash-routed traffic falls
        back to the others, so no admitted request ever fails.  The new
        ``service_factory`` (``None`` = re-run the current one, e.g. a
        factory that loads ``CheckpointStore.load_latest()`` picks up
        the newest checkpoint by construction) applies to each replica
        as it restarts.
        """
        if service_factory is not None:
            self._factory = service_factory
            for shard in self._shards:
                shard.handle._factory = service_factory
        self._reload_pending = [s.id for s in self._shards]

    @property
    def reloading(self) -> bool:
        return bool(self._reload_pending) or any(
            s.state == DRAINING for s in self._shards
        )

    def _advance_reload(self, now: float) -> None:
        draining = [s for s in self._shards if s.state == DRAINING]
        self.report.max_concurrent_draining = max(
            self.report.max_concurrent_draining, len(draining)
        )
        for shard in draining:
            # Queued-but-undispatched work reroutes immediately; only
            # genuinely in-flight requests hold the drain open.
            queued = list(shard.queue)
            shard.queue.clear()
            for ticket in queued:
                request = self._requests.get(ticket)
                if request is not None:
                    request.inflight_on.discard(shard.id)
                self._requeue(ticket, refund=False)
            if not shard.inflight:
                shard.handle.stop(timeout_s=2.0)
                shard.handle.generation += 1
                shard.handle.start()
                shard.state = READY
                self.report.reloads += 1
                self._count("reloads")
                obs.emit("gateway.replica_reloaded", replica=shard.id,
                         generation=shard.handle.generation)
        if not any(s.state == DRAINING for s in self._shards):
            while self._reload_pending:
                nxt = self._shards[self._reload_pending.pop(0)]
                if nxt.state == READY:
                    nxt.state = DRAINING
                    obs.emit("gateway.replica_draining", replica=nxt.id)
                    break

    # -- hedging --------------------------------------------------------
    def _launch_hedges(self, now: float) -> None:
        budget_ms = self.config.hedge_after_ms
        if budget_ms is None:
            return
        for ticket, request in self._requests.items():
            if (ticket in self._done or request.hedged
                    or request.first_sent_at is None
                    or len(request.inflight_on) != 1):
                continue
            if (now - request.first_sent_at) * 1000.0 < budget_ms:
                continue
            shard = self._choose_shard(request, exclude=request.inflight_on,
                                       bounded=False)
            if shard is None:
                continue  # nobody to hedge to; the primary keeps the job
            if (self._retry_budget is not None
                    and not self._retry_budget.try_spend()):
                # Budget empty: the hedge waits for deposits from fresh
                # successes; during a storm it simply never launches.
                self.report.hedges_denied += 1
                self._count("hedges_denied")
                continue
            request.hedged = True
            request.hedge_shard = shard.id
            self.report.hedges += 1
            self._count("hedges")
            primary = next(iter(request.inflight_on))
            obs.emit("gateway.hedge", ticket=ticket,
                     primary=primary, hedge=shard.id)
            reqtrace.record("gateway.hedge", ticket=ticket,
                            primary=primary, hedge=shard.id)
            if request.trace is not None:
                reqtrace.hop(request.trace, "hedge", ticket=ticket,
                             where="gateway", primary=primary,
                             replica=shard.id)
            shard.inflight[ticket] = now
            request.inflight_on.add(shard.id)
            shard.handle.send(ticket, list(request.tokens),
                              request.deadline_ms,
                              priority=request.priority,
                              trace=request.trace)

    def _retry_limbo(self) -> None:
        for _ in range(len(self._limbo)):
            ticket = self._limbo.popleft()
            if ticket in self._done:
                continue
            request = self._requests.get(ticket)
            shard = (self._choose_shard(request, exclude=request.inflight_on,
                                        bounded=False)
                     if request is not None else None)
            if shard is None:
                self._limbo.append(ticket)
                continue
            shard.queue.appendleft(ticket)
            request.inflight_on.add(shard.id)

    # -- dispatch / collect ---------------------------------------------
    def _dispatch(self, now: float) -> None:
        for shard in self._shards:
            if shard.state != READY or not shard.handle.alive():
                continue
            while shard.queue:
                if (shard.limiter is not None
                        and len(shard.inflight) >= shard.limiter.limit):
                    break  # AIMD cap: leave the rest queued this pass
                if shard.codel is not None and self._codel_police(shard, now):
                    continue  # one stale ticket shed; re-check the queue
                ticket = self._pop_next(shard)
                if ticket in self._done:
                    continue  # answered elsewhere while queued
                request = self._requests[ticket]
                shard.inflight[ticket] = now
                if request.first_sent_at is None:
                    request.first_sent_at = now
                    wait_ms = max(
                        0.0, (now - request.submitted_at) * 1000.0
                    )
                    self._observe_queue_wait(request.priority, wait_ms,
                                             request.trace)
                    if request.trace is not None:
                        reqtrace.hop(request.trace, "dispatch",
                                     ticket=ticket, where="gateway",
                                     replica=shard.id,
                                     attempt=request.requeues,
                                     wait_ms=round(wait_ms, 3))
                elif request.trace is not None:
                    reqtrace.hop(request.trace, "dispatch", ticket=ticket,
                                 where="gateway", replica=shard.id,
                                 attempt=request.requeues)
                shard.handle.send(ticket, list(request.tokens),
                                  request.deadline_ms,
                                  priority=request.priority,
                                  trace=request.trace)

    def _pop_next(self, shard: _Shard) -> int:
        """Next ticket to dispatch: FIFO, or priority-ordered under
        overload control (highest class first, FIFO within a class)."""
        if self._overload is None:
            return shard.queue.popleft()
        best_index = 0
        best_rank = None
        for index, ticket in enumerate(shard.queue):
            request = self._requests.get(ticket)
            rank = (PRIORITY_RANK[request.priority]
                    if request is not None else -1)
            if best_rank is None or rank < best_rank:
                best_rank = rank
                best_index = index
                if rank <= 0:
                    break  # nothing outranks the head of this class
        ticket = shard.queue[best_index]
        del shard.queue[best_index]
        return ticket

    def _codel_police(self, shard: _Shard, now: float) -> bool:
        """CoDel staleness check on the shard queue's FIFO head.

        When the head has been standing past the CoDel target for a full
        interval, one ticket is shed — the freshest ticket of the
        *lowest* priority class present (the head itself only when
        nothing ranks below it), so staleness pressure lands on batch
        work first.  Returns True when a ticket was shed.
        """
        while shard.queue and shard.queue[0] in self._done:
            shard.queue.popleft()  # answered elsewhere; not head-of-line
        if not shard.queue:
            return False
        head = self._requests.get(shard.queue[0])
        if head is None:
            shard.queue.popleft()
            return True
        sojourn_ms = max(0.0, (now - head.submitted_at) * 1000.0)
        if not shard.codel.offer(sojourn_ms):
            return False
        worst = max(
            range(len(shard.queue)),
            key=lambda i: (
                PRIORITY_RANK.get(
                    getattr(self._requests.get(shard.queue[i]), "priority",
                            STANDARD), 1),
                shard.queue[i],
            ),
        )
        victim = shard.queue[worst]
        del shard.queue[worst]
        request = self._requests.get(victim)
        if request is not None:
            request.inflight_on.discard(shard.id)
        self._shed_ticket(
            victim, request,
            "queue standing beyond CoDel target; stale request shed",
            queued=True,
        )
        if shard.limiter is not None:
            shard.limiter.on_congestion()
        return True

    def _collect(self) -> int:
        delivered = 0
        for shard in self._shards:
            for ticket, result in shard.handle.poll():
                shard.inflight.pop(ticket, None)
                request = self._requests.get(ticket)
                if request is None or ticket in self._done:
                    # Cancelled-hedge or post-requeue duplicate: discard
                    # (already counted hedges_cancelled at delivery).
                    self.report.late_responses += 1
                    continue
                request.inflight_on.discard(shard.id)
                latency_ms = max(
                    0.0, (self.clock() - request.submitted_at) * 1000.0
                )
                self._done[ticket] = RoutedResult(
                    ticket, result, replica=shard.id,
                    latency_ms=latency_ms, hedged=request.hedged,
                    requeues=request.requeues, priority=request.priority,
                    trace=request.trace,
                )
                delivered += 1
                shard.served += 1
                shard.breaker.record_success()
                self.report.completed += 1
                self._count("completed")
                if self._retry_budget is not None \
                        and getattr(result, "ok", False):
                    self._retry_budget.on_success()
                if shard.limiter is not None:
                    # Deadline misses and replica-side sheds are the
                    # congestion signal the AIMD limiter reacts to.
                    if (deadline_missed(result)
                            or getattr(result, "status", "")
                            == "overloaded"):
                        shard.limiter.on_congestion()
                    else:
                        shard.limiter.on_success()
                self.metrics.histogram("gateway.latency_ms").observe(
                    latency_ms, request.trace
                )
                obs.observe("gateway.latency_ms", latency_ms,
                            trace_id=request.trace)
                if request.trace is not None:
                    reqtrace.hop(request.trace, "respond", ticket=ticket,
                                 where="gateway", replica=shard.id,
                                 latency_ms=round(latency_ms, 3),
                                 status=getattr(result, "status", "?"),
                                 hedged=request.hedged)
                # Cancel the losing hedge leg: stop tracking it there.
                for other_id in list(request.inflight_on):
                    other = self._shards[other_id]
                    other.inflight.pop(ticket, None)
                    if ticket in other.queue:
                        try:
                            other.queue.remove(ticket)
                        except ValueError:  # pragma: no cover
                            pass
                    request.inflight_on.discard(other_id)
                    if request.hedged:
                        self.report.hedges_cancelled += 1
                if request.hedged and shard.id == request.hedge_shard:
                    self.report.hedges_won += 1
                    self._count("hedges_won")
        return delivered

    # ------------------------------------------------------------------
    # Draining and convenience
    # ------------------------------------------------------------------
    @property
    def outstanding(self) -> int:
        """Admitted tickets not yet answered."""
        return self.report.admitted - self.report.completed

    def collect(self) -> dict[int, RoutedResult]:
        """Hand back everything finished so far (and forget it)."""
        done, self._done = self._done, {}
        for ticket in done:
            self._requests.pop(ticket, None)
        return done

    def drain(self, timeout_s: float | None = None,
              pump_reload: bool = False) -> dict[int, RoutedResult]:
        """Pump until every admitted ticket has an answer.

        With a :class:`~repro.serving.ManualClock` the clock is advanced
        by ``poll_interval_s`` per idle pass; with a real clock the
        gateway sleeps instead.  ``pump_reload=True`` also keeps pumping
        until a rolling reload completes.  ``timeout_s`` bounds *wall*
        time and raises :class:`GatewayStalled` when exceeded — zero
        tickets are ever silently dropped.
        """
        t0 = time.monotonic()
        while True:
            delivered = self.pump()
            busy = self.outstanding > 0 or (pump_reload and self.reloading)
            if not busy:
                return self.collect()
            if timeout_s is not None and time.monotonic() - t0 > timeout_s:
                pending = [t for t in self._requests if t not in self._done]
                raise GatewayStalled(
                    f"{len(pending)} ticket(s) still pending after "
                    f"{timeout_s:g}s: {sorted(pending)[:10]}"
                )
            if not delivered:
                if hasattr(self.clock, "advance"):
                    self.clock.advance(self.config.poll_interval_s)
                else:
                    time.sleep(self.config.poll_interval_s)

    def tag_many(self, requests: Iterable[Sequence[str]],
                 deadline_ms=_UNSET, priority: str = STANDARD,
                 timeout_s: float | None = None) -> list:
        """Service-compatible batch API: one result per request, in order."""
        tickets = [self.submit(tokens, deadline_ms=deadline_ms,
                               priority=priority)
                   for tokens in requests]
        done = self.drain(timeout_s=timeout_s)
        return [done[t].result for t in tickets]

    def kill_replica(self, replica_id: int) -> None:
        """Hard-kill one replica (chaos hook; detection is the pump's job)."""
        self._shards[replica_id].handle.kill()

    def health(self) -> dict:
        """Fleet-level health view: per-replica status + breaker states."""
        statuses = [shard.status() for shard in self._shards]
        healthy = sum(1 for s in statuses
                      if s["alive"] and s["state"] == READY
                      and s["breaker"] != OPEN)
        health = {
            "backend": self.backend,
            "replicas": len(statuses),
            "healthy": healthy,
            "reloading": self.reloading,
            "outstanding": self.outstanding,
            "store": self._store_snapshot(),
            "queue_wait": self._queue_wait_stats(),
            "per_replica": statuses,
        }
        if self._overload is not None:
            health["overload"] = self._overload_snapshot()
        return health
