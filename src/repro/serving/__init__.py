"""Hardened inference: the serving layer of the reproduction.

Production counterpart to the training-side :mod:`repro.reliability`
package.  Five cooperating pieces (see ``docs/serving.md``):

* :mod:`~repro.serving.sanitize` — :class:`RequestSanitizer` turns
  hostile input (control characters, zero-width junk, kilobyte tokens)
  into clean bounded token sequences or structured
  :class:`InvalidRequest` errors;
* :mod:`~repro.serving.deadline` — :class:`Deadline` carries a
  monotonic-clock budget through the whole pipeline; :class:`ManualClock`
  makes every timing path deterministic in tests;
* :mod:`~repro.serving.breaker` — :class:`CircuitBreaker` trips on
  repeated Viterbi overruns/exceptions and half-opens after a cool-down;
* :mod:`~repro.serving.service` — :class:`TaggingService` wires it all
  together: bounded admission queue, micro-batching by length band,
  deadline-bounded decode with greedy degradation, quality-flagged
  :class:`TagResult` / :class:`Rejected` / :class:`Overloaded` results.

Above the single service sits the sharded fleet tier:

* :mod:`~repro.serving.routing` — :class:`HashRing` consistent-hash
  request routing with a deterministic fallback order;
* :mod:`~repro.serving.replica` — replica handles (forked worker
  process, or in-process on a virtual clock for deterministic tests);
* :mod:`~repro.serving.gateway` — :class:`ShardedGateway`: supervised
  replica fleet with per-replica circuit breakers, hedged retries,
  bounded shard queues, zero-loss failover and rolling reload, all
  accounted in a :class:`GatewayReport`;
* :mod:`~repro.serving.loadgen` — seeded open-/closed-loop load
  generation with a histogram-backed :class:`SLOReport`.

The CLI front-ends are ``repro tag``, ``repro serve``,
``repro loadgen`` and ``repro validate``; the corpus-side counterpart
is :mod:`repro.data.lint`.
"""

from repro.serving.breaker import (
    BREAKER_STATE_CODES,
    CLOSED,
    HALF_OPEN,
    OPEN,
    CircuitBreaker,
)
from repro.serving.deadline import Deadline, DeadlineExceeded, ManualClock
from repro.serving.gateway import (
    GatewayConfig,
    GatewayReport,
    GatewayStalled,
    RoutedResult,
    ShardedGateway,
)
from repro.serving.loadgen import SLOReport, run_load, synthetic_requests
from repro.serving.overload import (
    BATCH,
    INTERACTIVE,
    MODE_CACHED,
    MODE_FULL,
    MODE_GREEDY,
    MODE_SHED,
    MODES,
    PRIORITIES,
    PRIORITY_RANK,
    STANDARD,
    AIMDLimiter,
    BrownoutLadder,
    CoDelController,
    OverloadConfig,
    RetryBudget,
    assign_priorities,
    mode_for,
    parse_priority_mix,
)
from repro.serving.routing import HashRing, request_key
from repro.serving.sanitize import (
    InvalidRequest,
    RequestSanitizer,
    SanitizedRequest,
    SanitizerConfig,
)
from repro.serving.service import (
    Expired,
    Overloaded,
    Rejected,
    ServiceConfig,
    TaggingService,
    TagResult,
)

__all__ = [
    "CircuitBreaker",
    "BREAKER_STATE_CODES",
    "CLOSED",
    "OPEN",
    "HALF_OPEN",
    "HashRing",
    "request_key",
    "ShardedGateway",
    "GatewayConfig",
    "GatewayReport",
    "GatewayStalled",
    "RoutedResult",
    "SLOReport",
    "run_load",
    "synthetic_requests",
    "Deadline",
    "DeadlineExceeded",
    "ManualClock",
    "InvalidRequest",
    "RequestSanitizer",
    "SanitizedRequest",
    "SanitizerConfig",
    "Expired",
    "Overloaded",
    "Rejected",
    "ServiceConfig",
    "TaggingService",
    "TagResult",
    "OverloadConfig",
    "AIMDLimiter",
    "BrownoutLadder",
    "CoDelController",
    "RetryBudget",
    "INTERACTIVE",
    "STANDARD",
    "BATCH",
    "PRIORITIES",
    "PRIORITY_RANK",
    "MODES",
    "MODE_FULL",
    "MODE_GREEDY",
    "MODE_CACHED",
    "MODE_SHED",
    "mode_for",
    "parse_priority_mix",
    "assign_priorities",
]
