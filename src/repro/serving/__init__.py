"""Hardened inference: the serving layer of the reproduction.

Production counterpart to the training-side :mod:`repro.reliability`
package.  Five cooperating pieces (see ``docs/serving.md``):

* :mod:`~repro.serving.sanitize` — :class:`RequestSanitizer` turns
  hostile input (control characters, zero-width junk, kilobyte tokens)
  into clean bounded token sequences or structured
  :class:`InvalidRequest` errors;
* :mod:`~repro.serving.deadline` — :class:`Deadline` carries a
  monotonic-clock budget through the whole pipeline; :class:`ManualClock`
  makes every timing path deterministic in tests;
* :mod:`~repro.serving.breaker` — :class:`CircuitBreaker` trips on
  repeated Viterbi overruns/exceptions and half-opens after a cool-down;
* :mod:`~repro.serving.service` — :class:`TaggingService` wires it all
  together: bounded admission queue, micro-batching by length band,
  deadline-bounded decode with greedy degradation, quality-flagged
  :class:`TagResult` / :class:`Rejected` / :class:`Overloaded` results.

The CLI front-ends are ``repro tag`` and ``repro validate``; the
corpus-side counterpart is :mod:`repro.data.lint`.
"""

from repro.serving.breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker
from repro.serving.deadline import Deadline, DeadlineExceeded, ManualClock
from repro.serving.sanitize import (
    InvalidRequest,
    RequestSanitizer,
    SanitizedRequest,
    SanitizerConfig,
)
from repro.serving.service import (
    Overloaded,
    Rejected,
    ServiceConfig,
    TaggingService,
    TagResult,
)

__all__ = [
    "CircuitBreaker",
    "CLOSED",
    "OPEN",
    "HALF_OPEN",
    "Deadline",
    "DeadlineExceeded",
    "ManualClock",
    "InvalidRequest",
    "RequestSanitizer",
    "SanitizedRequest",
    "SanitizerConfig",
    "Overloaded",
    "Rejected",
    "ServiceConfig",
    "TaggingService",
    "TagResult",
]
