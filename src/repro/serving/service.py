"""The hardened tagging service: validate → budget → decode → degrade.

:class:`TaggingService` wraps any model exposing ``decode_within`` (the
CNN-BiGRU-CRF backbone, the LM baselines) in the pipeline a loaded
production tagger needs:

1. **Admission** — a bounded queue: past ``max_pending`` requests, new
   work is shed immediately with an :class:`Overloaded` result (bounded
   latency beats unbounded queueing).
2. **Validation/sanitization** — NFC normalization, control-character
   stripping, length caps; garbage becomes a structured
   :class:`Rejected` result, never a traceback.
3. **Micro-batching** — admitted requests are grouped by length band
   (compatible padding) into batches of ``max_batch_size`` and encoded
   once per batch.
4. **Deadline-bounded decode** — each request's monotonic-clock
   :class:`~repro.serving.deadline.Deadline` (started at admission, so
   queue wait counts) is threaded into the batched decode; once budget
   is spent remaining sentences get the greedy decode, flagged
   ``degraded=True``.
5. **Circuit breaker** — repeated Viterbi overruns or exceptions trip
   the breaker; while open, every request goes straight to greedy and
   the breaker half-opens after its cool-down to probe recovery.

Every response carries quality flags (``degraded``, ``oov_rate``,
``modified``) so callers can decide whether a cheap answer is good
enough.  The service itself never raises to the caller from corpus
content or decode failures — only a
:class:`~repro.reliability.faults.SimulatedCrash` (``BaseException``)
passes through, by design.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import ClassVar, Iterable, Sequence

from repro.data.sentence import Sentence
from repro.data.tags import TagScheme
from repro.models.decoding import (
    DEGRADED_BREAKER,
    DEGRADED_DEADLINE,
    DEGRADED_ERROR,
    DEGRADED_STATUSES,
    FAILURE_STATUSES,
    FULL,
    OVERRUN,
)
from repro import obs
from repro.obs import reqtrace
from repro.obs.metrics import MetricsRegistry
from repro.serving.breaker import OPEN, CircuitBreaker
from repro.serving.deadline import Clock, Deadline
from repro.serving.overload import (
    MODE_CACHED,
    MODE_FULL,
    MODE_GREEDY,
    MODE_SHED,
    PRIORITIES,
    PRIORITY_RANK,
    STANDARD,
    BrownoutLadder,
    CoDelController,
    OverloadConfig,
    validate_priority,
)
from repro.serving.sanitize import InvalidRequest, RequestSanitizer, SanitizerConfig

_UNSET = object()

_STATUS_NOTES = {
    OVERRUN: "viterbi decode overran the deadline",
    DEGRADED_DEADLINE: "deadline expired; greedy decode served",
    DEGRADED_ERROR: "viterbi decode raised; greedy decode served",
    DEGRADED_BREAKER: "circuit breaker open; greedy decode served",
}


# ----------------------------------------------------------------------
# Results
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TagResult:
    """A served answer, with quality flags."""

    tokens: tuple[str, ...]
    spans: tuple[tuple[int, int, str], ...]
    #: True when the greedy fallback (not full Viterbi) produced the tags.
    degraded: bool = False
    #: Fraction of tokens unknown to the model's word vocabulary.
    oov_rate: float = 0.0
    #: True when sanitization had to rewrite or truncate the input.
    modified: bool = False
    #: Why the answer is not a full-quality one (``None`` when it is).
    note: str | None = None
    #: Milliseconds the request waited between admission (:meth:`~TaggingService.submit`)
    #: and the start of its micro-batch decode.
    queue_wait_ms: float = 0.0

    status: ClassVar[str] = "ok"

    @property
    def ok(self) -> bool:
        return True


@dataclass(frozen=True)
class Rejected:
    """A structurally invalid request (the 400 of this service)."""

    reason: str
    field: str = "tokens"
    index: int | None = None

    status: ClassVar[str] = "invalid"

    @property
    def ok(self) -> bool:
        return False

    @classmethod
    def from_error(cls, exc: InvalidRequest) -> "Rejected":
        return cls(exc.reason, field=exc.field, index=exc.index)


@dataclass(frozen=True)
class Overloaded:
    """Load was shed before any work happened (the 503 of this service)."""

    reason: str
    #: Milliseconds the request waited in a queue before being shed
    #: (zero when shed at admission).
    queue_wait_ms: float = 0.0

    status: ClassVar[str] = "overloaded"

    @property
    def ok(self) -> bool:
        return False


@dataclass(frozen=True)
class Expired:
    """The request's deadline was spent before decode started (the 504).

    Distinct from :class:`Overloaded` (the service had no room) and from
    a degraded :class:`TagResult` (a cheap answer was still served):
    here the budget was already gone, so serving anything — even greedy
    — would arrive after the caller stopped listening.
    """

    reason: str
    queue_wait_ms: float = 0.0

    status: ClassVar[str] = "expired"

    @property
    def ok(self) -> bool:
        return False


# ----------------------------------------------------------------------
# Configuration
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ServiceConfig:
    """Operating limits of a :class:`TaggingService`."""

    sanitizer: SanitizerConfig = field(default_factory=SanitizerConfig)
    #: Budget per request in milliseconds; ``None`` = unbounded.
    default_deadline_ms: float | None = None
    #: Sentences decoded per micro-batch.
    max_batch_size: int = 16
    #: Requests admitted per processing cycle; the rest are shed.
    max_pending: int = 64
    #: Length-band width (tokens) for micro-batch compatibility grouping.
    length_band: int = 16
    #: Consecutive Viterbi failures (overrun or exception) that trip the
    #: breaker.
    breaker_threshold: int = 3
    #: Cool-down before a tripped breaker half-opens.
    breaker_cooldown_ms: float = 1000.0
    #: Overload-control knobs; ``None`` keeps the legacy binary
    #: shed-at-max-pending behaviour bit-for-bit.
    overload: OverloadConfig | None = None

    def __post_init__(self):
        if self.max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if self.max_pending < 1:
            raise ValueError("max_pending must be >= 1")
        if self.length_band < 1:
            raise ValueError("length_band must be >= 1")


@dataclass
class _Pending:
    """An admitted, sanitized request waiting for its micro-batch."""

    key: int
    sentence: Sentence
    deadline: Deadline | None
    modified: bool
    #: Service-clock time of admission (queue-wait measurement origin).
    admitted_at: float = 0.0
    #: Priority class (overload control); ``standard`` when unset.
    priority: str = STANDARD
    #: Request-trace id carried from gateway admission (``None`` = untraced).
    trace: str | None = None


# ----------------------------------------------------------------------
# Service
# ----------------------------------------------------------------------
class TaggingService:
    """Serve tag requests through the validated, bounded pipeline.

    ``model`` is anything with ``decode_within`` (and optionally a
    ``word_vocab`` for OOV rates); ``clock`` and ``fault_injector`` are
    injectable for deterministic tests — see
    :class:`~repro.serving.deadline.ManualClock` and the decode hooks of
    :class:`~repro.reliability.faults.FaultInjector`.
    """

    def __init__(self, model, scheme: TagScheme,
                 config: ServiceConfig | None = None,
                 clock: Clock = time.monotonic,
                 fault_injector=None, phi=None):
        self.model = model
        self.scheme = scheme
        self.config = config or ServiceConfig()
        self.clock = clock
        self.phi = phi
        self._injector = fault_injector
        self.sanitizer = RequestSanitizer(self.config.sanitizer)
        self.breaker = CircuitBreaker(
            failure_threshold=self.config.breaker_threshold,
            cooldown_s=self.config.breaker_cooldown_ms / 1000.0,
            clock=clock,
            on_transition=self._on_breaker_transition,
        )
        self._pending: list[_Pending] = []
        self._done: dict[int, TagResult | Rejected | Overloaded | Expired] = {}
        self._next_ticket = 0
        self.stats = {
            "served": 0, "degraded": 0, "invalid": 0, "shed": 0,
            "decode_errors": 0, "batches": 0, "store_hits": 0, "expired": 0,
        }
        if self.config.overload is not None:
            self.ladder = BrownoutLadder(
                self.config.overload, clock=clock,
                on_transition=self._on_overload_transition,
            )
            self.codel = CoDelController(
                self.config.overload.codel_target_ms,
                self.config.overload.codel_interval_ms, clock=clock,
            )
            self.overload_sheds = {name: 0 for name in PRIORITIES}
        else:
            self.ladder = None
            self.codel = None
            self.overload_sheds = None
        #: Per-instance metrics (two services never share counters); the
        #: active telemetry session, when any, gets mirrored updates.
        self.metrics = MetricsRegistry()
        #: Lazily-computed identity of what this service decodes with
        #: (θ, φ, scheme) — the prefix of every persistent-store key.
        #: Serving never mutates θ/φ, so computing it once is safe.
        self._serve_fp: tuple | None = None

    def _bump(self, name: str, n: int = 1) -> None:
        self.stats[name] += n
        self.metrics.counter(f"serving.{name}").inc(n)
        obs.count(f"serving.{name}", n)

    def _observe_ms(self, name: str, value_ms: float,
                    trace_id: str | None = None) -> None:
        self.metrics.histogram(name).observe(value_ms, trace_id)
        obs.observe(name, value_ms, trace_id=trace_id)

    def _on_breaker_transition(self, old: str, new: str, breaker) -> None:
        self.metrics.counter("serving.breaker_transitions").inc()
        obs.count("serving.breaker_transitions")
        obs.emit("breaker", old=old, new=new,
                 failures=breaker._consecutive_failures, trips=breaker.trips)
        reqtrace.record("breaker", old=old, new=new)
        if new == OPEN:
            reqtrace.incident("breaker_open", old=old,
                              trips=breaker.trips)

    def _on_overload_transition(self, old: int, new: int,
                                miss_rate: float) -> None:
        self.metrics.gauge("overload.level").set(new)
        obs.set_gauge("overload.level", new)
        self.metrics.counter("overload.transitions").inc()
        obs.count("overload.transitions")
        obs.emit("overload", old=old, new=new, miss_rate=round(miss_rate, 4))
        reqtrace.record("overload", old=old, new=new)
        recorder = reqtrace.flight_active()
        if recorder is not None and new > old \
                and new >= recorder.brownout_level:
            reqtrace.incident("brownout_escalation", old=old, new=new)

    def _shed(self, ticket: int, priority: str, reason: str,
              wait_ms: float = 0.0, trace: str | None = None) -> None:
        """Record one shed: result, ledger, and per-priority counters."""
        self._bump("shed")
        if self.overload_sheds is not None:
            self.overload_sheds[priority] += 1
            self.metrics.counter(f"overload.shed.{priority}").inc()
            obs.count(f"overload.shed.{priority}")
        self._done[ticket] = Overloaded(reason, queue_wait_ms=wait_ms)
        if trace is not None:
            reqtrace.hop(trace, "shed", ticket=ticket, where="service",
                         priority=priority, wait_ms=round(wait_ms, 3))

    def _expire(self, ticket: int, reason: str, wait_ms: float = 0.0,
                trace: str | None = None) -> None:
        self._bump("expired")
        self._done[ticket] = Expired(reason, queue_wait_ms=wait_ms)
        if trace is not None:
            reqtrace.hop(trace, "expire", ticket=ticket, where="service",
                         wait_ms=round(wait_ms, 3))

    def overload_snapshot(self) -> dict | None:
        """Ladder/CoDel/shed state for health checks and reports."""
        if self.ladder is None:
            return None
        snap = self.ladder.snapshot()
        snap["codel_drops"] = self.codel.drops
        snap["shed_by_priority"] = dict(self.overload_sheds)
        snap["expired"] = self.stats["expired"]
        return snap

    # ------------------------------------------------------------------
    # Checkpoint loading
    # ------------------------------------------------------------------
    @classmethod
    def from_checkpoint(cls, path: str,
                        config: ServiceConfig | None = None,
                        clock: Clock = time.monotonic,
                        fault_injector=None) -> "TaggingService":
        """Build a service around a ``repro train`` checkpoint.

        The model is rebuilt exactly as ``repro evaluate`` does — from
        the checkpoint's metadata (method, dataset, scale, seed) — and
        served with φ = None, i.e. the task-independent parameters θ.
        The tag scheme is the abstract N-way space the checkpoint was
        trained with (way slots ``0..N-1``).
        """
        from repro.data.splits import split_by_types
        from repro.data.synthetic import generate_dataset
        from repro.data.vocab import CharVocabulary, Vocabulary
        from repro.meta import MethodConfig, build_method
        from repro.nn import load_module, load_state

        _state, metadata = load_state(path)
        method = metadata.get("method", "FewNER")
        seed = metadata.get("seed", 0)
        n_way = metadata.get("n_way", 5)
        dataset = generate_dataset(
            metadata.get("dataset", "GENIA"),
            scale=metadata.get("scale", 0.05),
            seed=seed,
        )
        n_types = len(dataset.types)
        holdout = metadata.get("holdout_types", 5)
        counts = (n_types - 2 * holdout, holdout, holdout)
        train, _val, _test = split_by_types(dataset, counts, seed=seed + 1)
        word_vocab = Vocabulary.from_datasets([train], min_count=2)
        char_vocab = CharVocabulary.from_datasets([train])
        adapter = build_method(method, word_vocab, char_vocab, n_way,
                               MethodConfig(seed=seed))
        model = getattr(adapter, "model", None) or getattr(adapter, "tagger")
        load_module(model, path)
        scheme = TagScheme(tuple(str(way) for way in range(n_way)))
        return cls(model, scheme, config=config, clock=clock,
                   fault_injector=fault_injector)

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def tag(self, tokens: Sequence[str], deadline_ms=_UNSET,
            priority: str = STANDARD, trace: str | None = None,
            ) -> TagResult | Rejected | Overloaded | Expired:
        """Tag one sentence through the full pipeline."""
        return self.tag_many([tokens], deadline_ms=deadline_ms,
                             priority=priority, trace=trace)[0]

    def tag_many(self, requests: Iterable[Sequence[str]],
                 deadline_ms=_UNSET, priority: str = STANDARD,
                 trace: str | None = None,
                 ) -> list[TagResult | Rejected | Overloaded | Expired]:
        """Tag a batch of sentences; one result per request, same order."""
        tickets = [
            self.submit(tokens, deadline_ms=deadline_ms, priority=priority,
                        trace=trace)
            for tokens in requests
        ]
        done = self.drain()
        return [done[ticket] for ticket in tickets]

    def submit(self, tokens: Sequence[str], deadline_ms=_UNSET,
               priority: str = STANDARD, trace: str | None = None) -> int:
        """Admit (or immediately shed/reject) one request; returns a ticket.

        The request's deadline starts *now*: time spent waiting in the
        queue for :meth:`drain` is part of its budget.  A request that
        arrives with its budget already spent (``deadline_ms <= 0``) is
        failed immediately with an :class:`Expired` result rather than
        wasting a decode slot.  With overload control enabled, admission
        is priority-weighted: the brownout ladder may shed the class
        outright, and a full queue evicts strictly-lower-priority work
        before shedding the arrival.
        """
        priority = validate_priority(priority)
        trace = reqtrace.wire_id(trace)
        ticket = self._next_ticket
        self._next_ticket += 1
        if self.ladder is not None and self.ladder.mode(priority) == MODE_SHED:
            self._shed(
                ticket, priority,
                f"brownout: {priority} traffic shed at level "
                f"{self.ladder.pressure}", trace=trace,
            )
            return ticket
        if len(self._pending) >= self.config.max_pending \
                and not self._evict_for(priority):
            self._shed(
                ticket, priority,
                f"queue full ({self.config.max_pending} pending requests)",
                trace=trace,
            )
            return ticket
        try:
            clean = self.sanitizer.sanitize(tokens)
        except InvalidRequest as exc:
            self._bump("invalid")
            self._done[ticket] = Rejected.from_error(exc)
            if trace is not None:
                reqtrace.hop(trace, "respond", ticket=ticket,
                             where="service", status="invalid")
            return ticket
        budget = (
            self.config.default_deadline_ms
            if deadline_ms is _UNSET else deadline_ms
        )
        if budget is not None and budget <= 0:
            self._expire(ticket, "deadline budget already spent at admission",
                         trace=trace)
            return ticket
        deadline = (
            Deadline.after_ms(budget, clock=self.clock)
            if budget is not None else None
        )
        self._pending.append(_Pending(
            ticket, Sentence(clean.tokens), deadline, clean.modified,
            admitted_at=self.clock(), priority=priority, trace=trace,
        ))
        self.metrics.gauge("serving.queue_depth").set(len(self._pending))
        obs.set_gauge("serving.queue_depth", len(self._pending))
        if trace is not None:
            reqtrace.hop(trace, "queue", ticket=ticket, where="service",
                         priority=priority, depth=len(self._pending))
        return ticket

    def _evict_for(self, priority: str) -> bool:
        """Try to free a queue slot for an arrival of ``priority``.

        Evicts the freshest, lowest-priority queued request when it ranks
        strictly below the arrival — batch never displaces interactive,
        and nothing evicts within its own class.  Returns True when a
        slot was freed.
        """
        if self.ladder is None or not self._pending:
            return False
        worst = max(
            range(len(self._pending)),
            key=lambda i: (PRIORITY_RANK[self._pending[i].priority], i),
        )
        victim = self._pending[worst]
        if PRIORITY_RANK[victim.priority] <= PRIORITY_RANK[priority]:
            return False
        del self._pending[worst]
        wait_ms = max(0.0, (self.clock() - victim.admitted_at) * 1000.0)
        self._observe_ms("serving.queue_wait_ms", wait_ms,
                         trace_id=victim.trace)
        if victim.trace is not None:
            reqtrace.hop(victim.trace, "evict", ticket=victim.key,
                         where="service", by=priority)
        self._shed(victim.key, victim.priority,
                   f"evicted by a {priority} arrival while queued",
                   wait_ms=wait_ms, trace=victim.trace)
        return True

    def drain(self) -> dict[int, TagResult | Rejected | Overloaded]:
        """Process all queued work and hand back every finished result.

        Each served :class:`TagResult` reports its admission→decode
        queue wait (``queue_wait_ms``), also folded into the
        ``serving.queue_wait_ms`` latency histogram.
        """
        pending, self._pending = self._pending, []
        self.metrics.gauge("serving.queue_depth").set(0)
        obs.set_gauge("serving.queue_depth", 0)
        if self.ladder is not None:
            self.ladder.tick()
            pending = self._police_queue(pending)
        for batch in self._micro_batches(pending):
            self._process_batch(batch)
        done, self._done = self._done, {}
        return done

    def _police_queue(self, pending: list[_Pending]) -> list[_Pending]:
        """Overload-control pass over the queue before batching.

        Fails requests whose deadline expired while they waited, runs
        the CoDel staleness discipline over the rest, and orders the
        survivors highest-priority-first (FIFO within a class).  Both
        expiries and CoDel drops count as deadline misses for the
        brownout ladder — they are symptoms of a standing queue.
        """
        survivors: list[_Pending] = []
        for item in pending:
            wait_ms = max(0.0, (self.clock() - item.admitted_at) * 1000.0)
            if item.deadline is not None and item.deadline.expired:
                self._observe_ms("serving.queue_wait_ms", wait_ms,
                                 trace_id=item.trace)
                self._expire(item.key, "deadline expired while queued",
                             wait_ms=wait_ms, trace=item.trace)
                self.ladder.observe(True)
                continue
            if self.codel.offer(wait_ms):
                self._observe_ms("serving.queue_wait_ms", wait_ms,
                                 trace_id=item.trace)
                self._shed(item.key, item.priority,
                           "queue standing beyond CoDel target; "
                           "stale request shed", wait_ms=wait_ms,
                           trace=item.trace)
                self.ladder.observe(True)
                continue
            survivors.append(item)
        survivors.sort(key=lambda it: (PRIORITY_RANK[it.priority], it.key))
        return survivors

    # ------------------------------------------------------------------
    # Pipeline internals
    # ------------------------------------------------------------------
    def _micro_batches(self, pending: list[_Pending]) -> Iterable[list[_Pending]]:
        """Group compatible requests: same length band, FIFO, bounded size.

        Length banding keeps padding waste bounded — a 4-token tweet is
        never padded to a 400-token clause — without reordering requests
        inside a band.
        """
        bands: dict[tuple, list[_Pending]] = {}
        order: list[tuple] = []
        for item in pending:
            band = ((len(item.sentence) - 1) // self.config.length_band,)
            if self.ladder is not None:
                # One priority class per micro-batch, so the brownout
                # mode is uniform across the batch.
                band = (PRIORITY_RANK[item.priority],) + band
            if band not in bands:
                bands[band] = []
                order.append(band)
            bands[band].append(item)
        for band in order:
            group = bands[band]
            for i in range(0, len(group), self.config.max_batch_size):
                yield group[i : i + self.config.max_batch_size]

    def _batch_deadline(self, batch: list[_Pending]) -> Deadline | None:
        """The tightest member deadline governs the whole micro-batch.

        Conservative when budgets are mixed: an unbounded request batched
        with bounded ones may degrade early, but no bounded request is
        ever decoded past its own deadline.
        """
        deadlines = [p.deadline for p in batch if p.deadline is not None]
        if not deadlines:
            return None
        return min(deadlines, key=lambda d: d.remaining())

    def _oov_rate(self, tokens: tuple[str, ...]) -> float:
        vocab = getattr(self.model, "word_vocab", None)
        if vocab is None or not tokens:
            return 0.0
        unk = sum(1 for t in tokens if t not in vocab)
        return unk / len(tokens)

    def _on_decode(self, index: int) -> None:
        if self._injector is not None:
            self._injector.before_decode()

    # ------------------------------------------------------------------
    # Persistent decoded-path cache (repro.store)
    # ------------------------------------------------------------------
    def _store_key(self, store, tokens: tuple[str, ...]):
        """Persistent-store key for one request, or ``None``.

        Keys cover everything the decoded path depends on — θ, φ, the
        tag scheme, and the sanitized tokens — so a hit is bit-identical
        to a full-fidelity Viterbi decode of the same request.  Models
        without a ``state_dict`` (no fingerprintable θ) opt out.
        """
        from repro import store as pstore

        if self._serve_fp is None:
            if getattr(self.model, "state_dict", None) is None:
                self._serve_fp = ()
            else:
                import hashlib

                import numpy as np

                phi = self.phi
                if phi is None:
                    phi_fp = "none"
                else:
                    data = np.ascontiguousarray(getattr(phi, "data", phi))
                    phi_fp = hashlib.sha256(data.tobytes()).hexdigest()
                self._serve_fp = (
                    pstore.model_fingerprint(self.model), phi_fp,
                    "|".join(self.scheme.tags),
                )
        if not self._serve_fp:
            return None
        return pstore.make_key("serve_path", *self._serve_fp, *tokens)

    def _store_probe(self, batch: list[_Pending]):
        """Look each request up in the active store: ``(hits, keys)``.

        ``hits`` maps ticket → cached decoded path (tag-id list from an
        earlier full-fidelity decode); ``keys`` maps ticket → store key
        so misses can be written back after decoding.  Store faults
        degrade to empty maps (ArrayStore never raises).
        """
        from repro import store as pstore

        store = pstore.active()
        hits: dict[int, list[int]] = {}
        keys: dict[int, bytes] = {}
        if store is None:
            return hits, keys
        for p in batch:
            key = self._store_key(store, p.sentence.tokens)
            if key is None:
                return {}, {}
            keys[p.key] = key
            path = store.get_json(key)
            if path is not None:
                hits[p.key] = path
        return hits, keys

    def _trace_served(self, p: _Pending, wait_ms: float, status: str,
                      degraded: bool = False, decode_ms: float | None = None,
                      cached: bool = False) -> None:
        """Emit the service-side decode+respond hops for one request."""
        if p.trace is None:
            return
        fields = {"ticket": p.key, "where": "service",
                  "wait_ms": round(wait_ms, 3), "status": status}
        if decode_ms is not None:
            fields["decode_ms"] = round(decode_ms, 3)
        if cached:
            fields["cached"] = True
        if degraded:
            fields["degraded"] = True
        reqtrace.hop(p.trace, "decode", **fields)
        reqtrace.hop(p.trace, "respond", ticket=p.key, where="service",
                     status=status)

    def _process_batch(self, batch: list[_Pending]) -> None:
        deadline = self._batch_deadline(batch)
        decode_started = self.clock()
        waits = {
            p.key: max(0.0, (decode_started - p.admitted_at) * 1000.0)
            for p in batch
        }
        for p in batch:
            self._observe_ms("serving.queue_wait_ms", waits[p.key],
                             trace_id=p.trace)
        # Batches are single-priority when overload control is on, so
        # one ladder lookup fixes the brownout mode for the whole batch.
        mode = (
            self.ladder.mode(batch[0].priority)
            if self.ladder is not None else MODE_FULL
        )
        if mode == MODE_SHED:
            # The ladder escalated between admission and drain.
            for p in batch:
                self._shed(p.key, p.priority,
                           f"brownout: {p.priority} traffic shed at level "
                           f"{self.ladder.pressure}", wait_ms=waits[p.key],
                           trace=p.trace)
            return
        hits, store_keys = self._store_probe(batch)
        if hits:
            # Serve cached full-fidelity paths without decoding; the
            # breaker is untouched — a hit is evidence about the store,
            # not about Viterbi health.
            for p in batch:
                if p.key not in hits:
                    continue
                self._bump("served")
                self._bump("store_hits")
                spans = tuple(
                    (start, end, label)
                    for start, end, label in self.scheme.decode(hits[p.key])
                )
                self._done[p.key] = TagResult(
                    p.sentence.tokens, spans,
                    oov_rate=self._oov_rate(p.sentence.tokens),
                    modified=p.modified, queue_wait_ms=waits[p.key],
                )
                self._trace_served(p, waits[p.key], "ok", cached=True)
                if self.ladder is not None:
                    self.ladder.observe(False)
            batch = [p for p in batch if p.key not in hits]
            if not batch:
                return
        if mode == MODE_CACHED:
            # Cached-only brownout: anything the store cannot answer is
            # shed rather than spending decode budget under pressure.
            for p in batch:
                self._shed(p.key, p.priority,
                           f"brownout: cached-only at level "
                           f"{self.ladder.pressure}; no stored path",
                           wait_ms=waits[p.key], trace=p.trace)
            return
        sentences = [p.sentence for p in batch]
        try:
            if self._injector is not None:
                before_batch = getattr(self._injector, "before_batch", None)
                if before_batch is not None:
                    before_batch()  # whole-batch worker-style fault
            # No injector → no per-sentence hook, which lets the decoder
            # take its batched bulk path when the deadline allows.
            on_sentence = self._on_decode if self._injector is not None else None
            # A browned-out batch goes straight to greedy without
            # consulting the breaker: consuming its half-open probe for
            # work the ladder already downgraded would waste the probe.
            paths, statuses = self.model.decode_within(
                sentences, phi=self.phi, deadline=deadline,
                on_sentence=on_sentence,
                allow_viterbi=(
                    self.breaker.allow() if mode == MODE_FULL else False
                ),
            )
        except Exception as exc:  # encoding/emissions failed outright
            decode_ms = (self.clock() - decode_started) * 1000.0
            self._observe_ms("serving.decode_ms", decode_ms)
            self._bump("decode_errors")
            self.breaker.record_failure()
            for p in batch:
                self._bump("served")
                self._bump("degraded")
                self._done[p.key] = TagResult(
                    p.sentence.tokens, (), degraded=True,
                    oov_rate=self._oov_rate(p.sentence.tokens),
                    modified=p.modified,
                    note=f"decode failed ({type(exc).__name__}: {exc}); "
                         f"no spans served",
                    queue_wait_ms=waits[p.key],
                )
                self._trace_served(p, waits[p.key], "error", degraded=True,
                                   decode_ms=decode_ms)
                if self.ladder is not None:
                    self.ladder.observe(True)
            return
        decode_ms = (self.clock() - decode_started) * 1000.0
        self._observe_ms("serving.decode_ms", decode_ms)
        self._bump("batches")
        store = None
        if store_keys:
            from repro import store as pstore

            store = pstore.active()
        for p, path, status in zip(batch, paths, statuses):
            if status == FULL:
                self.breaker.record_success()
                if store is not None:
                    # Only full-fidelity Viterbi paths are cached, so a
                    # future hit never replays a degraded answer.
                    store.put_json(
                        store_keys[p.key], [int(t) for t in path]
                    )
            elif status in FAILURE_STATUSES:
                self.breaker.record_failure()
                if status == DEGRADED_ERROR:
                    self._bump("decode_errors")
            degraded = status in DEGRADED_STATUSES
            self._bump("served")
            if degraded:
                self._bump("degraded")
            note = _STATUS_NOTES.get(status)
            if mode == MODE_GREEDY and status == DEGRADED_BREAKER:
                note = (f"brownout: greedy decode served "
                        f"(level {self.ladder.pressure})")
            spans = tuple(
                (start, end, label)
                for start, end, label in self.scheme.decode(path)
            )
            self._done[p.key] = TagResult(
                p.sentence.tokens, spans, degraded=degraded,
                oov_rate=self._oov_rate(p.sentence.tokens),
                modified=p.modified, note=note,
                queue_wait_ms=waits[p.key],
            )
            self._trace_served(p, waits[p.key], status, degraded=degraded,
                               decode_ms=decode_ms)
            if self.ladder is not None:
                self.ladder.observe(status in (OVERRUN, DEGRADED_DEADLINE))
