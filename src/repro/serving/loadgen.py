"""Load generation and latency SLO reporting for the serving gateway.

Two textbook arrival models, both fully seeded:

* **open** — requests arrive on a Poisson process at ``rate_rps``
  (exponential inter-arrivals), independent of how fast the system
  answers.  This is what real user traffic looks like: a slow fleet
  does not slow the arrivals down, it grows the queues — so open-loop
  numbers expose queueing collapse that closed-loop runs hide
  (coordinated omission).
* **closed** — a fixed population of ``concurrency`` virtual clients,
  each submitting its next request only after its previous one
  completed.  This is the classic benchmark loop; throughput is
  self-clocked by the system under test.

Latency is accounted through a :class:`repro.obs.metrics.Histogram`
with the shared fixed :data:`~repro.obs.metrics.LATENCY_MS_BUCKETS`
bounds, and the p50/p95/p99 in the :class:`SLOReport` are read from the
histogram's cumulative bucket counts (Prometheus-style upper-bound
quantiles) — deterministic for a given run, byte-identical across
re-runs of the same seed on the in-process backend.

The CLI front-end is ``repro loadgen`` (see ``docs/cli.md``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.obs.metrics import (  # noqa: F401  (re-export for back-compat)
    LATENCY_MS_BUCKETS,
    Histogram,
    histogram_quantile,
)

#: Default token pool for synthetic traffic: common-ish words plus
#: novel-entity-shaped tokens, so requests mix in-vocabulary and OOV.
_DEFAULT_POOL = (
    "the", "a", "of", "in", "visited", "reports", "arrived", "today",
    "yesterday", "company", "river", "city", "Kavox", "Zuqev", "Mirelle",
    "Tordan", "Quibex", "Halvern",
)


def synthetic_requests(n: int, seed: int = 0,
                       pool: tuple[str, ...] = _DEFAULT_POOL,
                       min_len: int = 2, max_len: int = 9) -> list[list[str]]:
    """``n`` seeded synthetic token sequences drawn from ``pool``."""
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    rng = np.random.default_rng((seed, 9341))
    out = []
    for _ in range(n):
        length = int(rng.integers(min_len, max_len + 1))
        out.append([pool[int(i)] for i in rng.integers(0, len(pool), length)])
    return out


@dataclass(frozen=True)
class SLOReport:
    """Latency/throughput digest of one load-generation run."""

    model: str                 #: "open" or "closed"
    offered: int               #: requests the generator submitted
    completed: int             #: answered with a served result
    shed: int                  #: backpressured at gateway admission
    rejected: int              #: invalid input (sanitizer)
    degraded: int              #: served by the greedy fallback
    duration_s: float
    throughput_rps: float
    p50_ms: float
    p95_ms: float
    p99_ms: float
    mean_ms: float
    #: Raw bucket snapshot backing the quantiles.
    histogram: dict
    #: Requests whose deadline was spent before decode (``Expired``).
    expired: int = 0
    #: Per-priority-class breakdown (only when the run carried
    #: priorities): class → offered/completed/shed/expired/degraded,
    #: p50/p95/p99, shed_rate, degraded_rate.
    per_priority: dict | None = None

    def summary(self) -> dict:
        out = {
            "model": self.model,
            "offered": self.offered,
            "completed": self.completed,
            "shed": self.shed,
            "rejected": self.rejected,
            "degraded": self.degraded,
            "expired": self.expired,
            "duration_s": round(self.duration_s, 6),
            "throughput_rps": round(self.throughput_rps, 3),
            "p50_ms": self.p50_ms,
            "p95_ms": self.p95_ms,
            "p99_ms": self.p99_ms,
            "mean_ms": round(self.mean_ms, 3),
        }
        if self.per_priority is not None:
            out["per_priority"] = self.per_priority
        return out

    def render(self) -> str:
        def ms(v: float) -> str:
            return "inf" if v == float("inf") else f"{v:g}"

        lines = [
            f"load report ({self.model} loop)",
            f"  offered {self.offered}, completed {self.completed}, "
            f"shed {self.shed}, rejected {self.rejected}, "
            f"degraded {self.degraded}, expired {self.expired}",
            f"  duration {self.duration_s:.3f} s, "
            f"throughput {self.throughput_rps:.1f} req/s",
            f"  latency p50 <= {ms(self.p50_ms)} ms, "
            f"p95 <= {ms(self.p95_ms)} ms, p99 <= {ms(self.p99_ms)} ms "
            f"(mean {self.mean_ms:.3f} ms)",
        ]
        for name, stats in (self.per_priority or {}).items():
            lines.append(
                f"  [{name}] offered {stats['offered']}, "
                f"completed {stats['completed']}, "
                f"shed {stats['shed']} ({stats['shed_rate']:.1%}), "
                f"degraded {stats['degraded']} "
                f"({stats['degraded_rate']:.1%}), "
                f"p50 <= {ms(stats['p50_ms'])} ms, "
                f"p95 <= {ms(stats['p95_ms'])} ms, "
                f"p99 <= {ms(stats['p99_ms'])} ms"
            )
        return "\n".join(lines)


def _classify(result) -> str:
    status = getattr(result, "status", "?")
    if status == "ok":
        return "degraded" if getattr(result, "degraded", False) else "ok"
    if status in ("rejected", "invalid"):
        return "rejected"
    if status == "expired":
        return "expired"
    return "shed"  # Overloaded: gateway admission or replica queue


def run_load(gateway, requests, model: str = "open",
             rate_rps: float = 200.0, concurrency: int = 8,
             seed: int = 0, timeout_s: float | None = 60.0,
             priorities=None) -> SLOReport:
    """Drive ``gateway`` with ``requests`` under one arrival model.

    ``gateway`` needs the :class:`~repro.serving.gateway.ShardedGateway`
    surface (``submit`` / ``pump`` / ``collect`` / ``clock`` /
    ``outstanding``).  On a manual clock the generator *advances* time
    instead of sleeping, so open-loop schedules are exact and tests are
    instant.  ``priorities`` (one class per request, e.g. from
    :func:`repro.serving.overload.assign_priorities`) attaches priority
    classes and switches on the per-class breakdown in the report.
    Returns the :class:`SLOReport`; per-request latencies are also
    mirrored into the active telemetry session as the
    ``loadgen.latency_ms`` histogram.
    """
    if model not in ("open", "closed"):
        raise ValueError(f"model must be 'open' or 'closed', got {model!r}")
    if model == "open" and rate_rps <= 0:
        raise ValueError(f"rate_rps must be positive, got {rate_rps}")
    if model == "closed" and concurrency < 1:
        raise ValueError(f"concurrency must be >= 1, got {concurrency}")
    requests = [list(r) for r in requests]
    n = len(requests)
    if priorities is not None and len(priorities) != n:
        raise ValueError(
            f"priorities ({len(priorities)}) must match requests ({n})"
        )
    clock = gateway.clock
    manual = hasattr(clock, "advance")
    poll_s = getattr(gateway.config, "poll_interval_s", 0.002)
    hist = Histogram("loadgen.latency_ms", LATENCY_MS_BUCKETS)
    outcomes = {"ok": 0, "degraded": 0, "rejected": 0, "shed": 0,
                "expired": 0}
    per: dict[str, dict] | None = None
    ticket_priority: dict[int, str] = {}
    if priorities is not None:
        per = {}
        for name in priorities:
            if name not in per:
                per[name] = {
                    "offered": 0, "completed": 0, "shed": 0,
                    "expired": 0, "degraded": 0, "rejected": 0,
                    "hist": Histogram(f"loadgen.latency_ms.{name}",
                                      LATENCY_MS_BUCKETS),
                }
    t_wall0 = time.monotonic()
    t0 = clock()

    def wait(dt: float) -> None:
        if dt <= 0:
            return
        if manual:
            clock.advance(dt)
        else:
            time.sleep(dt)

    def offer(index: int) -> None:
        if priorities is None:
            gateway.submit(requests[index])
            return
        name = priorities[index]
        ticket = gateway.submit(requests[index], priority=name)
        ticket_priority[ticket] = name
        per[name]["offered"] += 1

    def absorb() -> int:
        got = 0
        for ticket, routed in gateway.collect().items():
            got += 1
            kind = _classify(routed.result)
            outcomes[kind] += 1
            if routed.replica is not None:
                trace = getattr(routed, "trace", None)
                hist.observe(routed.latency_ms, trace_id=trace)
                obs.observe("loadgen.latency_ms", routed.latency_ms,
                            trace_id=trace)
            if per is not None and ticket in ticket_priority:
                stats = per[ticket_priority.pop(ticket)]
                if kind in ("ok", "degraded"):
                    stats["completed"] += 1
                    if kind == "degraded":
                        stats["degraded"] += 1
                else:
                    stats[kind] += 1
                if routed.replica is not None:
                    stats["hist"].observe(routed.latency_ms,
                                          trace_id=trace)
        return got

    submitted = 0
    done = 0
    if model == "open":
        rng = np.random.default_rng((seed, 4721))
        arrivals = t0 + np.cumsum(rng.exponential(1.0 / rate_rps, size=n))
        while done < n:
            now = clock()
            while submitted < n and arrivals[submitted] <= now:
                offer(submitted)
                submitted += 1
            gateway.pump()
            done += absorb()
            if done >= n:
                break
            if timeout_s is not None and time.monotonic() - t_wall0 > timeout_s:
                break
            if submitted < n:
                wait(min(poll_s, max(0.0, arrivals[submitted] - clock())))
            else:
                wait(poll_s)
    else:
        while done < n:
            while submitted < n and (submitted - done) < concurrency:
                offer(submitted)
                submitted += 1
            gateway.pump()
            delivered = absorb()
            done += delivered
            if done >= n:
                break
            if timeout_s is not None and time.monotonic() - t_wall0 > timeout_s:
                break
            if not delivered:
                wait(poll_s)

    duration = max(clock() - t0, 1e-9)
    completed = outcomes["ok"] + outcomes["degraded"]
    per_priority = None
    if per is not None:
        per_priority = {}
        for name, stats in per.items():
            offered = stats["offered"]
            class_hist = stats.pop("hist")
            per_priority[name] = {
                **stats,
                "shed_rate": stats["shed"] / offered if offered else 0.0,
                "degraded_rate": (stats["degraded"] / offered
                                  if offered else 0.0),
                "p50_ms": histogram_quantile(class_hist, 0.50),
                "p95_ms": histogram_quantile(class_hist, 0.95),
                "p99_ms": histogram_quantile(class_hist, 0.99),
            }
    return SLOReport(
        model=model,
        offered=submitted,
        completed=completed,
        shed=outcomes["shed"],
        rejected=outcomes["rejected"],
        degraded=outcomes["degraded"],
        expired=outcomes["expired"],
        duration_s=duration,
        throughput_rps=done / duration,
        p50_ms=histogram_quantile(hist, 0.50),
        p95_ms=histogram_quantile(hist, 0.95),
        p99_ms=histogram_quantile(hist, 0.99),
        mean_ms=hist.mean,
        histogram=hist.snapshot(),
        per_priority=per_priority,
    )
