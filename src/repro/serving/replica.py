"""Replica handles: where one :class:`TaggingService` actually runs.

The gateway core (:mod:`repro.serving.gateway`) is a pure routing /
supervision state machine over this small handle interface, so the same
failover, hedging and reload logic is exercised by two backends:

* :class:`InProcessReplica` — the service lives in the supervisor
  process; completions are released against an injectable clock through
  an optional ``service_time_s`` latency model, which makes hedging and
  failover *deterministically* testable (advance a
  :class:`~repro.serving.deadline.ManualClock`, watch the hedge fire).
  ``kill()`` simulates a replica death: in-flight work is dropped on
  the floor, exactly like a SIGKILL'd process losing its pipe.
* :class:`ProcessReplica` — a forked worker process hosting the
  service, following the supervision discipline of
  :class:`repro.perf.executor.EpisodeExecutor`: the service factory is
  published in a lock-guarded module slot *before* the fork so models
  are inherited copy-on-write (never pickled), each replica gets its
  own request and response ``SimpleQueue`` (single writer, single
  reader — a SIGKILL'd replica can strand only its *own* queue locks),
  and a rebuild always starts from **fresh queues**, so a worker killed
  mid-``put`` can never poison its replacement.

Messages crossing the pipe are small tuples of primitives and frozen
result dataclasses; requests a dead replica never answered are the
*gateway's* responsibility (it tracks every dispatched ticket and
requeues on death), so nothing is lost with the pipe.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Callable, Sequence

#: Fork-inherited replica payload: ``(service_factory, telemetry_path)``.
#: Held only around ``Process.start()`` under :data:`_PAYLOAD_LOCK`, so
#: two fleets spawning concurrently cannot clobber each other.
_PAYLOAD = None
_PAYLOAD_LOCK = threading.Lock()

#: Exit code a replica uses for a clean shutdown.
_CLEAN_EXIT = 0


def fork_available() -> bool:
    """True when a fork-backed replica fleet can run here and now."""
    import multiprocessing

    if not hasattr(os, "fork"):
        return False
    if "fork" not in multiprocessing.get_all_start_methods():
        return False
    return not multiprocessing.current_process().daemon


def _replica_main(replica_id: int, generation: int, request_q, response_q):
    """Worker entry point: serve requests until told to stop.

    Runs the fork-inherited service factory, announces readiness, then
    answers ``("req", ticket, tokens, deadline_ms, priority, trace)``
    messages with ``("res", ticket, result)`` until a ``("stop",)``
    message (or EOF) arrives.  ``trace`` is the request's trace id (or
    ``None``); five-field messages from an older supervisor are still
    accepted.  If a telemetry path was active in the supervisor, the
    replica opens its *own* child session on a per-replica sibling file
    (``<path>.replica-<id>``), so fleet events are never interleaved
    into the parent's stream — ``repro obs report`` merges the siblings
    back into one report.
    """
    import contextlib

    factory, telemetry_path = _PAYLOAD
    session = contextlib.nullcontext()
    if telemetry_path is not None:
        from repro import obs

        # A fresh pid-owned session: the inherited parent session is
        # foreign here (its sink pid-guard would drop every write).
        session = obs.telemetry_session(
            f"{telemetry_path}.replica-{replica_id}"
        )
    with session:
        service = factory(replica_id)
        response_q.put(("ready", replica_id, generation, os.getpid()))
        while True:
            try:
                message = request_q.get()
            except (EOFError, OSError):  # supervisor went away
                break
            if message is None or message[0] == "stop":
                break
            _kind, ticket, tokens, deadline_ms, priority = message[:5]
            trace = message[5] if len(message) > 5 else None
            try:
                # Equality, not identity: the sentinel was pickled
                # through the request queue.
                if deadline_ms == _UNSET_SENTINEL:
                    result = service.tag(tokens, priority=priority,
                                         trace=trace)
                else:
                    result = service.tag(tokens, deadline_ms=deadline_ms,
                                         priority=priority, trace=trace)
            except Exception as exc:  # the service never raises by design
                from repro.serving.service import Overloaded

                result = Overloaded(
                    f"replica {replica_id} failed "
                    f"({type(exc).__name__}: {exc})"
                )
            response_q.put(("res", ticket, result))
    os._exit(_CLEAN_EXIT)


#: Pipe-safe stand-in for "caller did not pass a deadline" (the service
#: distinguishes an explicit ``None`` from an unset argument).
_UNSET_SENTINEL = "__unset__"


class InProcessReplica:
    """A replica living in the supervisor process, on a virtual clock.

    ``service_time_s(tokens, ticket) -> float`` models per-request
    latency: a request sent at ``t`` becomes collectable at
    ``t + service_time_s(...)`` on ``clock``.  The default (``None``)
    completes everything immediately.  The tag result itself is
    computed eagerly at ``send`` time — latency modelling never changes
    *what* is answered, only *when*.
    """

    backend = "in-process"

    def __init__(self, replica_id: int,
                 service_factory: Callable[[int], object],
                 clock: Callable[[], float] = time.monotonic,
                 service_time_s=None):
        self.replica_id = int(replica_id)
        self._factory = service_factory
        self._clock = clock
        self._service_time = service_time_s
        self.generation = 0
        self._alive = False
        #: (release_at, ticket, result) not yet collected.
        self._pending: list[tuple[float, int, object]] = []
        self.service = None

    # ------------------------------------------------------------------
    def start(self) -> None:
        self.service = self._factory(self.replica_id)
        self._pending = []
        self._alive = True

    def restart(self) -> None:
        self.generation += 1
        self.start()

    def alive(self) -> bool:
        return self._alive

    def ready(self) -> bool:
        return self._alive

    def send(self, ticket: int, tokens: Sequence[str], deadline_ms,
             priority: str = "standard", trace: str | None = None) -> None:
        if not self._alive:
            return  # like writing into a dead process's pipe buffer
        if deadline_ms == _UNSET_SENTINEL:
            result = self.service.tag(tokens, priority=priority, trace=trace)
        else:
            result = self.service.tag(tokens, deadline_ms=deadline_ms,
                                      priority=priority, trace=trace)
        delay = (self._service_time(tokens, ticket)
                 if self._service_time is not None else 0.0)
        self._pending.append((self._clock() + delay, int(ticket), result))

    def poll(self) -> list[tuple[int, object]]:
        if not self._alive:
            return []
        now = self._clock()
        due = [(t, r) for release, t, r in self._pending if release <= now]
        self._pending = [entry for entry in self._pending
                         if entry[0] > now]
        return due

    # ------------------------------------------------------------------
    def kill(self) -> None:
        """Simulated SIGKILL: drop in-flight answers, go dead."""
        self._alive = False
        self._pending = []

    def stop(self, timeout_s: float = 5.0) -> None:
        self._alive = False
        self._pending = []


class ProcessReplica:
    """A replica in a forked worker process, queues in both directions."""

    backend = "process"

    def __init__(self, replica_id: int,
                 service_factory: Callable[[int], object],
                 telemetry_path: str | None = None,
                 start_method: str = "fork"):
        import multiprocessing

        self.replica_id = int(replica_id)
        self._factory = service_factory
        self._telemetry_path = telemetry_path
        self._context = multiprocessing.get_context(start_method)
        self.generation = 0
        self._proc = None
        self._request_q = None
        self._response_q = None
        self._ready = False

    # ------------------------------------------------------------------
    def start(self) -> None:
        global _PAYLOAD
        # Fresh queues per generation: a replica killed mid-``put`` may
        # die holding its old queue's write lock; the replacement must
        # never share that lock.
        self._request_q = self._context.SimpleQueue()
        self._response_q = self._context.SimpleQueue()
        self._ready = False
        with _PAYLOAD_LOCK:
            _PAYLOAD = (self._factory, self._telemetry_path)
            try:
                self._proc = self._context.Process(
                    target=_replica_main,
                    args=(self.replica_id, self.generation,
                          self._request_q, self._response_q),
                    daemon=True,
                )
                self._proc.start()
            finally:
                _PAYLOAD = None

    def restart(self) -> None:
        self.stop(timeout_s=0.0)
        self.generation += 1
        self.start()

    def alive(self) -> bool:
        return self._proc is not None and self._proc.is_alive()

    def ready(self) -> bool:
        return self._ready

    @property
    def pid(self) -> int | None:
        return None if self._proc is None else self._proc.pid

    @property
    def exitcode(self) -> int | None:
        return None if self._proc is None else self._proc.exitcode

    # ------------------------------------------------------------------
    def send(self, ticket: int, tokens: Sequence[str], deadline_ms,
             priority: str = "standard", trace: str | None = None) -> None:
        try:
            self._request_q.put(("req", int(ticket), list(tokens),
                                 deadline_ms, priority, trace))
        except (OSError, ValueError):  # torn pipe to a dead replica
            pass  # the gateway's death sweep requeues the ticket

    def poll(self) -> list[tuple[int, object]]:
        """Collect every complete response waiting on the pipe.

        Responses are small (well under ``PIPE_BUF``), so a SIGKILL
        mid-``put`` leaves either nothing or a whole message; anything
        unreadable anyway (torn frame, unpicklable bytes) is treated as
        replica death — the gateway requeues the in-flight tickets.
        """
        out: list[tuple[int, object]] = []
        if self._response_q is None:
            return out
        try:
            while not self._response_q.empty():
                message = self._response_q.get()
                if message[0] == "ready":
                    self._ready = True
                    continue
                _kind, ticket, result = message
                out.append((int(ticket), result))
        except (EOFError, OSError, ValueError, IndexError, TypeError,
                ImportError, AttributeError):
            pass  # treated as death; liveness sweep handles the rest
        return out

    # ------------------------------------------------------------------
    def kill(self) -> None:
        """Hard SIGKILL — the chaos scenario's weapon of choice."""
        import signal

        if self._proc is not None and self._proc.is_alive():
            os.kill(self._proc.pid, signal.SIGKILL)
            self._proc.join(timeout=5.0)

    def stop(self, timeout_s: float = 5.0) -> None:
        """Graceful shutdown; escalates to terminate past the timeout."""
        if self._proc is None:
            return
        if self._proc.is_alive():
            try:
                self._request_q.put(("stop",))
            except (OSError, ValueError):
                pass
            if timeout_s > 0:
                self._proc.join(timeout=timeout_s)
            if self._proc.is_alive():
                self._proc.terminate()
                self._proc.join(timeout=5.0)
        else:
            self._proc.join(timeout=0.1)
