"""Request validation and sanitization for the tagging service.

Real traffic is hostile by accident: zero-width joiners pasted from web
pages, NUL bytes from broken encoders, ten-kilobyte "tokens" from
concatenation bugs, empty lists from impatient clients.  The sanitizer
turns all of that into either a clean, bounded token sequence or a
structured :class:`InvalidRequest` whose ``field``/``index``/``reason``
a caller can act on — never a traceback from deep inside the encoder.

Normalization applied (in order): NFC unicode normalization, removal of
control/format/surrogate characters (categories Cc/Cf/Cs — this covers
NUL, bidi overrides and zero-width spaces; tabs/newlines inside a token
are token-boundary bugs and are removed too), and token-length capping.
Astral-plane letters, emoji and any printable script survive untouched:
the goal is bounding the input, not anglicizing it.
"""

from __future__ import annotations

import unicodedata
from dataclasses import dataclass
from typing import Sequence

#: Unicode categories stripped from tokens: control, format (zero-width
#: characters, bidi overrides), and surrogates (ill-formed text).
_STRIPPED_CATEGORIES = ("Cc", "Cf", "Cs")


class InvalidRequest(ValueError):
    """A request the service refuses, with machine-readable context."""

    def __init__(self, reason: str, *, field: str = "tokens",
                 index: int | None = None):
        self.reason = reason
        self.field = field
        self.index = index
        where = field if index is None else f"{field}[{index}]"
        super().__init__(f"invalid request ({where}): {reason}")


@dataclass(frozen=True)
class SanitizerConfig:
    """Bounds enforced on every request."""

    #: Maximum tokens per sentence; longer requests are rejected (a
    #: sentence this long is a segmentation failure upstream, and CRF
    #: decode cost is linear in it).
    max_tokens: int = 512
    #: Characters kept per token; the overflow is truncated and the
    #: response flagged, since char-CNN features cap at
    #: ``BackboneConfig.max_chars`` anyway.
    max_token_chars: int = 64
    #: Apply NFC normalization before filtering.
    normalize_nfc: bool = True


@dataclass(frozen=True)
class SanitizedRequest:
    """A cleaned token sequence plus what cleaning had to be done."""

    tokens: tuple[str, ...]
    n_truncated: int = 0
    n_rewritten: int = 0

    @property
    def modified(self) -> bool:
        return self.n_truncated > 0 or self.n_rewritten > 0


class RequestSanitizer:
    """Validate and clean one token sequence (see module docstring)."""

    def __init__(self, config: SanitizerConfig | None = None):
        self.config = config or SanitizerConfig()

    # ------------------------------------------------------------------
    def clean_token(self, token: str) -> str:
        """Normalized, control-free, whitespace-free form of ``token``.

        May return the empty string (e.g. a token that was *only* a
        zero-width space); :meth:`sanitize` rejects those with context.
        """
        if self.config.normalize_nfc:
            # Lone surrogates make normalize() raise; drop them first.
            token = "".join(
                c for c in token if unicodedata.category(c) != "Cs"
            )
            token = unicodedata.normalize("NFC", token)
        return "".join(
            c for c in token
            if unicodedata.category(c) not in _STRIPPED_CATEGORIES
            and not c.isspace()
        )

    # ------------------------------------------------------------------
    def sanitize(self, tokens: Sequence[str]) -> SanitizedRequest:
        """Clean ``tokens`` or raise a structured :class:`InvalidRequest`."""
        if isinstance(tokens, (str, bytes)):
            raise InvalidRequest(
                "expected a sequence of tokens, got a bare string — "
                "tokenize before calling the service"
            )
        try:
            tokens = list(tokens)
        except TypeError:
            raise InvalidRequest(
                f"expected a sequence of tokens, got {type(tokens).__name__}"
            ) from None
        if not tokens:
            raise InvalidRequest("empty token sequence")
        if len(tokens) > self.config.max_tokens:
            raise InvalidRequest(
                f"{len(tokens)} tokens exceeds the cap of "
                f"{self.config.max_tokens}"
            )
        cleaned: list[str] = []
        n_truncated = 0
        n_rewritten = 0
        for i, token in enumerate(tokens):
            if not isinstance(token, str):
                raise InvalidRequest(
                    f"token must be str, got {type(token).__name__}",
                    index=i,
                )
            out = self.clean_token(token)
            if not out:
                raise InvalidRequest(
                    "token is empty after removing control/format "
                    "characters and whitespace",
                    index=i,
                )
            if len(out) > self.config.max_token_chars:
                out = out[: self.config.max_token_chars]
                n_truncated += 1
            elif out != token:
                n_rewritten += 1
            cleaned.append(out)
        return SanitizedRequest(tuple(cleaned), n_truncated, n_rewritten)
