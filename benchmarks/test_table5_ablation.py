"""E5 — Table 5: ablation study of FEWNER on NNE."""

import dataclasses

from conftest import emit

from repro.experiments import table5


def test_table5_ablation(benchmark, scale):
    # The 11 ablation variants each train a FEWNER model; halve the
    # warm-up budget so the sweep stays tractable on one core.
    lean = dataclasses.replace(
        scale,
        method_config=dataclasses.replace(
            scale.method_config,
            pretrain_iterations=max(scale.method_config.pretrain_iterations // 2, 1),
        ),
    )
    rows = benchmark.pedantic(table5.run, args=(lean,), rounds=1, iterations=1)
    emit(table5.render(rows))
    variants = {r.variant for r in rows}
    assert "FewNER (baseline)" in variants
    assert "Remove character CNN" in variants
    assert len(variants) == 11
    # Baseline rows must carry zero delta by construction.
    for r in rows:
        if r.variant == "FewNER (baseline)":
            assert r.delta == 0.0
    # The paper's strongest ablation finding: removing the char-CNN hurts.
    if lean.name == "smoke":
        return
    for k in lean.shots:
        base = next(r for r in rows
                    if r.variant == "FewNER (baseline)" and r.k_shot == k)
        no_char = next(r for r in rows
                       if r.variant == "Remove character CNN" and r.k_shot == k)
        assert no_char.ci.mean <= base.ci.mean + 0.05
