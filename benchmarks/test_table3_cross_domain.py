"""E3 — Table 3: cross-domain intra-type adaptation on ACE2005."""

from conftest import emit

from repro.experiments import table3
from repro.experiments.harness import TABLE_METHODS


def test_table3_cross_domain_intra_type(benchmark, scale):
    result = benchmark.pedantic(
        table3.run, args=(scale,), kwargs={"methods": TABLE_METHODS},
        rounds=1, iterations=1,
    )
    emit(result.render())
    assert result.settings == ["BC->UN", "BN->CTS", "NW->WL"]
    for method in TABLE_METHODS:
        for setting in result.settings:
            for k in scale.shots:
                assert 0.0 <= result.cell(method, setting, k).f1 <= 1.0
    # Domain-distance shape: the close BN->CTS transfer should not be the
    # worst of the three for FEWNER (paper: it is the best).
    if scale.name != "smoke":
        fewner_by_setting = {
            s: result.cell("FewNER", s, min(scale.shots)).f1
            for s in result.settings
        }
        assert fewner_by_setting["BN->CTS"] >= min(fewner_by_setting.values())
