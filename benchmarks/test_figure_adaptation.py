"""Figure-1 extension: F1 vs inner adaptation steps, φ vs θ sizes."""

from conftest import emit

from repro.experiments import figures


def test_adaptation_curve(benchmark, scale):
    result = benchmark.pedantic(figures.run, args=(scale,), rounds=1,
                                iterations=1)
    emit(result.render())
    assert result.step_counts[0] == 0
    assert all(0.0 <= f <= 1.0 for f in result.mean_f1)
    # FEWNER adapts a strict subset of the parameters.
    assert result.adapted_parameters < result.total_parameters
    # Adaptation must help: the best adapted step count beats no
    # adaptation (guarded at meaningful scales only).
    if scale.name != "smoke":
        assert max(result.mean_f1[1:]) >= result.mean_f1[0]
