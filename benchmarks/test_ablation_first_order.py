"""Extension ablation: first-order vs second-order outer update.

DESIGN.md §5 item 6.  The paper uses the exact second-order update
(Eq. 6); this bench trains FEWNER both ways under an identical small
budget and reports the two scores side by side.
"""

import dataclasses

from conftest import emit

from repro.data.episodes import EpisodeSampler
from repro.data.splits import split_by_types
from repro.data.synthetic import generate_dataset
from repro.data.vocab import CharVocabulary, Vocabulary
from repro.meta.evaluate import evaluate_method, fixed_episodes
from repro.meta.fewner import FewNER


def _train_and_eval(scale, second_order: bool) -> float:
    ds = generate_dataset("NNE", scale=scale.corpus_scale, seed=0)
    from repro.experiments.table2 import TYPE_SPLITS, _fit_counts

    counts = _fit_counts(TYPE_SPLITS["NNE"], len(ds.types))
    train, _val, test = split_by_types(ds, counts, seed=1)
    wv = Vocabulary.from_datasets([train])
    cv = CharVocabulary.from_datasets([train])
    config = dataclasses.replace(
        scale.method_config,
        second_order=second_order,
        pretrain_iterations=max(scale.method_config.pretrain_iterations // 2, 1),
    )
    adapter = FewNER(wv, cv, scale.n_way, config)
    sampler = EpisodeSampler(train, scale.n_way, 1,
                             query_size=scale.query_size, seed=7)
    adapter.fit(sampler, max(scale.iterations_for("FewNER") // 2, 1))
    episodes = fixed_episodes(test, scale.n_way, 1,
                              max(scale.eval_episodes // 2, 2),
                              seed=42, query_size=scale.query_size)
    return evaluate_method(adapter, episodes).f1


def test_first_order_vs_second_order(benchmark, scale):
    def run_both():
        return (
            _train_and_eval(scale, second_order=False),
            _train_and_eval(scale, second_order=True),
        )

    fo, so = benchmark.pedantic(run_both, rounds=1, iterations=1)
    emit(
        "Ablation: outer-update order (NNE, 5-way 1-shot)\n"
        f"  first-order  F1 = {100 * fo:.2f}%\n"
        f"  second-order F1 = {100 * so:.2f}%"
    )
    assert 0.0 <= fo <= 1.0
    assert 0.0 <= so <= 1.0
