"""Shared fixtures for the benchmark suite.

Scale is selected with ``REPRO_SCALE`` (smoke | default | paper); the
default preset regenerates every table of the paper on a single CPU core
in well under an hour.
"""

import pytest

from repro.experiments import get_scale


@pytest.fixture(scope="session")
def scale():
    return get_scale()


def emit(text: str) -> None:
    """Print a result block and persist it to ``bench_tables.txt``.

    pytest captures stdout of passing tests, so the rendered tables are
    additionally appended to a side file next to the repository root —
    that file is the canonical record of the regenerated paper tables.
    """
    block = "\n" + text + "\n"
    print(block, flush=True)
    try:
        with open("bench_tables.txt", "a", encoding="utf-8") as fh:
            fh.write(block)
    except OSError:
        pass
