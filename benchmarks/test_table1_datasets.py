"""E1 — Table 1: regenerate the dataset-statistics table."""

from conftest import emit

from repro.experiments import table1


def test_table1_statistics(benchmark, scale):
    rows = benchmark.pedantic(
        table1.run, args=(scale,), rounds=1, iterations=1
    )
    emit(table1.render(rows))
    assert len(rows) == 6
    for row in rows:
        # Type inventories survive scaling; sentence/mention counts keep
        # the paper's relative ordering.
        assert row.types <= row.paper_types
        assert row.sentences > 0
    by_name = {r.dataset: r for r in rows}
    assert by_name["OntoNotes"].sentences > by_name["BioNLP13CG"].sentences
    assert by_name["NNE"].mentions > by_name["FG-NER"].mentions
