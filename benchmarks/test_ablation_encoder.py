"""Extension ablation: context-encoder choice (BiGRU vs BiLSTM vs
transformer-from-scratch).

§3.2.2 of the paper motivates CNN-BiGRU over transformers for small
corpora trained from scratch.  This bench trains FEWNER with each
encoder under an identical small budget and reports the scores.
"""

import dataclasses

from conftest import emit

from repro.data.episodes import EpisodeSampler
from repro.data.splits import split_by_types
from repro.data.synthetic import generate_dataset
from repro.data.vocab import CharVocabulary, Vocabulary
from repro.meta.evaluate import evaluate_method, fixed_episodes
from repro.meta.fewner import FewNER

ENCODERS = ("bigru", "bilstm", "transformer")


def _score(scale, encoder: str) -> float:
    from repro.experiments.table2 import TYPE_SPLITS, _fit_counts

    ds = generate_dataset("NNE", scale=scale.corpus_scale, seed=0)
    counts = _fit_counts(TYPE_SPLITS["NNE"], len(ds.types))
    train, _val, test = split_by_types(ds, counts, seed=1)
    wv = Vocabulary.from_datasets([train], min_count=2)
    cv = CharVocabulary.from_datasets([train])
    config = dataclasses.replace(
        scale.method_config,
        pretrain_iterations=max(scale.method_config.pretrain_iterations // 2, 1),
    ).with_backbone(encoder=encoder)
    adapter = FewNER(wv, cv, scale.n_way, config)
    sampler = EpisodeSampler(train, scale.n_way, 1,
                             query_size=scale.query_size, seed=7)
    adapter.fit(sampler, max(scale.iterations_for("FewNER") // 2, 1))
    episodes = fixed_episodes(test, scale.n_way, 1,
                              max(scale.eval_episodes // 2, 2),
                              seed=77, query_size=scale.query_size)
    return evaluate_method(adapter, episodes).f1


def test_encoder_ablation(benchmark, scale):
    scores = benchmark.pedantic(
        lambda: {enc: _score(scale, enc) for enc in ENCODERS},
        rounds=1, iterations=1,
    )
    lines = ["Ablation: context encoder (NNE, 5-way 1-shot, small budget)"]
    for enc in ENCODERS:
        lines.append(f"  {enc:<12} F1 = {100 * scores[enc]:.2f}%")
    emit("\n".join(lines))
    assert all(0.0 <= v <= 1.0 for v in scores.values())
