"""E4 — Table 4: cross-domain cross-type adaptation."""

from conftest import emit

from repro.experiments import table4
from repro.experiments.harness import TABLE_METHODS


def test_table4_cross_domain_cross_type(benchmark, scale):
    result = benchmark.pedantic(
        table4.run, args=(scale,), kwargs={"methods": TABLE_METHODS},
        rounds=1, iterations=1,
    )
    emit(result.render())
    assert result.settings == [
        "GENIA->BioNLP13CG", "OntoNotes->BioNLP13CG", "OntoNotes->FG-NER"
    ]
    for method in TABLE_METHODS:
        for setting in result.settings:
            for k in scale.shots:
                assert 0.0 <= result.cell(method, setting, k).f1 <= 1.0
    # Genre-match shape (paper §4.4.2): transferring into BioNLP13CG from
    # the same medical genre (GENIA) should not do worse than from the
    # mismatched OntoNotes for FEWNER.  Statistical-shape guards only run
    # at scales with a meaningful episode count.
    if scale.name != "smoke":
        k = min(scale.shots)
        same_genre = result.cell("FewNER", "GENIA->BioNLP13CG", k).f1
        cross_genre = result.cell("FewNER", "OntoNotes->BioNLP13CG", k).f1
        assert same_genre + 1e-9 >= cross_genre * 0.5  # soft ordering guard
