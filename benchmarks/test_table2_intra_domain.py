"""E2 — Table 2: intra-domain cross-type adaptation, all ten methods."""

from conftest import emit

from repro.experiments import table2
from repro.experiments.harness import TABLE_METHODS


def test_table2_intra_domain_cross_type(benchmark, scale):
    result = benchmark.pedantic(
        table2.run, args=(scale,), kwargs={"methods": TABLE_METHODS},
        rounds=1, iterations=1,
    )
    emit(result.render())
    assert result.settings == ["NNE", "FG-NER", "GENIA"]
    for method in TABLE_METHODS:
        for setting in result.settings:
            for k in scale.shots:
                cell = result.cell(method, setting, k)
                assert 0.0 <= cell.f1 <= 1.0
    # Headline shape: FEWNER beats the non-adaptive FineTune baseline on
    # every dataset at every shot count (statistical guard; skipped at
    # smoke scale where episode counts are too small to be meaningful).
    if scale.name != "smoke":
        for setting in result.settings:
            for k in scale.shots:
                fewner = result.cell("FewNER", setting, k).f1
                finetune = result.cell("FineTune", setting, k).f1
                assert fewner + 0.02 >= finetune, (setting, k, fewner, finetune)
