"""E7 — Table 6: qualitative positive/negative examples."""

import dataclasses

from conftest import emit

from repro.experiments import table6
from repro.experiments.registry import render_result


def test_table6_qualitative(benchmark, scale):
    lean = dataclasses.replace(
        scale,
        train_iterations={**scale.train_iterations, "FewNER": 4},
        method_config=dataclasses.replace(
            scale.method_config,
            pretrain_iterations=max(scale.method_config.pretrain_iterations // 2, 1),
        ),
    )
    examples = benchmark.pedantic(table6.run, args=(lean,), rounds=1, iterations=1)
    emit(render_result("table6", examples))
    adaptations = {e.adaptation for e in examples}
    # All nine adaptation settings of the paper are exercised.
    assert {"NNE -> NNE", "FG-NER -> FG-NER", "GENIA -> GENIA"} <= adaptations
    assert {"BC->UN", "BN->CTS", "NW->WL"} <= adaptations
    assert {
        "GENIA->BioNLP13CG", "OntoNotes->BioNLP13CG", "OntoNotes->FG-NER"
    } <= adaptations
    for ex in examples:
        assert ex.rendered  # every row renders bracketed text
