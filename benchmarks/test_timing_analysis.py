"""E6 — §4.5.2: time-consumption analysis of FEWNER.

Unlike the table benches (single pedantic rounds around a whole
experiment) these are genuine micro-benchmarks of the individual phases
the paper times: an inner gradient step, a full outer meta-batch, and
test-time adaptation/evaluation of one task.
"""

import dataclasses

import pytest
from conftest import emit

from repro.data.episodes import EpisodeSampler
from repro.data.splits import split_by_types
from repro.data.synthetic import generate_dataset
from repro.data.vocab import CharVocabulary, Vocabulary
from repro.experiments import timing as timing_mod
from repro.experiments.table2 import TYPE_SPLITS, _fit_counts
from repro.meta.fewner import FewNER


@pytest.fixture(scope="module")
def env():
    from repro.experiments import get_scale

    scale = get_scale()
    ds = generate_dataset("NNE", scale=scale.corpus_scale, seed=0)
    counts = _fit_counts(TYPE_SPLITS["NNE"], len(ds.types))
    train, _val, test = split_by_types(ds, counts, seed=1)
    wv = Vocabulary.from_datasets([train])
    cv = CharVocabulary.from_datasets([train])
    config = dataclasses.replace(scale.method_config, pretrain_iterations=0)
    adapter = FewNER(wv, cv, scale.n_way, config)
    return scale, train, test, adapter


def test_inner_step_1shot(benchmark, env):
    scale, train, test, adapter = env
    episode = EpisodeSampler(test, scale.n_way, 1, query_size=scale.query_size,
                             seed=3).sample()
    benchmark(lambda: adapter._inner_adapt(episode, 1, create_graph=True))


def test_inner_step_5shot(benchmark, env):
    scale, train, test, adapter = env
    episode = EpisodeSampler(test, scale.n_way, 5, query_size=scale.query_size,
                             seed=4).sample()
    benchmark(lambda: adapter._inner_adapt(episode, 1, create_graph=True))


def test_outer_meta_batch(benchmark, env):
    scale, train, _test, adapter = env
    sampler = EpisodeSampler(train, scale.n_way, 1,
                             query_size=scale.query_size, seed=5)
    benchmark.pedantic(lambda: adapter.fit(sampler, 1), rounds=2, iterations=1)


def test_adapt_task(benchmark, env):
    scale, _train, test, adapter = env
    episode = EpisodeSampler(test, scale.n_way, 1, query_size=scale.query_size,
                             seed=6).sample()
    benchmark(lambda: adapter.adapt_context(episode))


def test_evaluate_task(benchmark, env):
    scale, _train, test, adapter = env
    episode = EpisodeSampler(test, scale.n_way, 1, query_size=scale.query_size,
                             seed=7).sample()
    benchmark(lambda: adapter.predict_episode(episode))


def test_timing_report_relationships(benchmark, env):
    """The structural claims of §4.5.2, asserted on measured numbers."""
    from repro.experiments import get_scale

    report = benchmark.pedantic(
        timing_mod.run, args=(get_scale(),), rounds=1, iterations=1
    )
    emit(report.render())
    # Inner steps are far cheaper than a full outer meta-batch.
    assert report.inner_step_1shot < report.outer_batch_1shot
    assert report.inner_step_5shot < report.outer_batch_5shot
    # 5-shot support sets cost at least as much as 1-shot to adapt on
    # (time grows with data size), within measurement noise.
    assert report.adapt_task_5shot > 0.5 * report.adapt_task_1shot
